// Failure-aware retrieval end to end (the fault-injection transport of
// net/fault.h wired through the engines):
//
//   * a seeded lossy build is posting-for-posting identical to the
//     zero-fault build — on both overlays, at any thread count — because
//     indexing losses are absorbed by the barrier redelivery queue;
//   * with replication > 1, killing the responsible peer fails queries
//     over to a replica holder: zero degraded responses while any holder
//     survives, identical rankings;
//   * with every holder dead the query DEGRADES instead of failing: it
//     answers from the reachable lattice keys and flags itself;
//   * evicting the dead peer through the standard departure repair
//     restores an index identical to a fault-free build over the
//     survivors;
//   * the "faulty:..." engine-spec decorator and the single-term baseline
//     honor the same contract.
#include <memory>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/query_gen.h"
#include "corpus/stats.h"
#include "corpus/synthetic.h"
#include "engine/engine_factory.h"
#include "engine/hdk_engine.h"
#include "engine/partition.h"
#include "engine/st_engine.h"
#include "net/fault.h"
#include "net/traffic.h"

namespace hdk::engine {
namespace {

corpus::SyntheticCorpus FaultCorpus() {
  corpus::SyntheticConfig cfg;
  cfg.seed = 4242;
  cfg.vocabulary_size = 3000;
  cfg.num_topics = 12;
  cfg.topic_width = 35;
  cfg.mean_doc_length = 50.0;
  cfg.topic_share = 0.7;
  return corpus::SyntheticCorpus(cfg);
}

HdkEngineConfig FaultConfig(size_t num_threads = 1) {
  HdkEngineConfig config;
  config.hdk.df_max = 8;
  config.hdk.very_frequent_threshold = 450;
  config.hdk.window = 8;
  config.hdk.s_max = 3;
  config.num_threads = num_threads;
  return config;
}

std::vector<corpus::Query> FaultQueries(const corpus::DocumentStore& store,
                                        std::span<const DocRange> ranges,
                                        size_t count = 25) {
  corpus::CollectionStats stats(store, ranges);
  corpus::QueryGenConfig qcfg;
  qcfg.min_term_df = 3;
  return corpus::QueryGenerator(qcfg, store, stats).Generate(count);
}

void ExpectSameContents(const hdk::HdkIndexContents& expected,
                        const hdk::HdkIndexContents& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (const auto& [key, entry] : expected.entries()) {
    const hdk::KeyEntry* other = actual.Find(key);
    ASSERT_NE(other, nullptr) << "missing key " << key.ToString();
    EXPECT_EQ(entry.global_df, other->global_df) << key.ToString();
    EXPECT_EQ(entry.is_hdk, other->is_hdk) << key.ToString();
    EXPECT_EQ(entry.postings, other->postings) << key.ToString();
  }
}

void ExpectSameResults(const SearchResponse& a, const SearchResponse& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].doc, b.results[i].doc);
    EXPECT_NEAR(a.results[i].score, b.results[i].score, 1e-12);
  }
}

class LossyBuildIdentityTest
    : public ::testing::TestWithParam<std::tuple<OverlayKind, size_t>> {};

TEST_P(LossyBuildIdentityTest, LossyBuildEqualsFaultFreeBuild) {
  const auto [overlay, threads] = GetParam();
  corpus::DocumentStore store;
  FaultCorpus().FillStore(240, &store);

  HdkEngineConfig clean_config = FaultConfig(threads);
  clean_config.overlay = overlay;
  auto clean = HdkSearchEngine::Build(clean_config, store,
                                      SplitEvenly(240, 4));
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  // 1% seeded loss on every message kind: insertions and notifications
  // are retried and, past the retry budget, redelivered at the level
  // barrier — the published index must not lose a single posting.
  HdkEngineConfig lossy_config = clean_config;
  auto plan = net::FaultPlan::Parse("seed=7,loss=0.01");
  ASSERT_TRUE(plan.ok());
  lossy_config.faults = *plan;
  auto lossy = HdkSearchEngine::Build(lossy_config, store,
                                      SplitEvenly(240, 4));
  ASSERT_TRUE(lossy.ok()) << lossy.status().ToString();

  ExpectSameContents((*clean)->global_index().ExportContents(),
                     (*lossy)->global_index().ExportContents());
  EXPECT_EQ((*lossy)->global_index().lost_contributions(), 0u);
  EXPECT_EQ((*lossy)->global_index().lost_notifications(), 0u);
  // The retried insertions are visible as extra recorded traffic.
  EXPECT_GT((*lossy)->traffic()->total().messages,
            (*clean)->traffic()->total().messages);

  // Queries under loss: retries happen, but every round trip eventually
  // lands (a whole round trip failing needs 4 consecutive losses per
  // leg) — no degraded responses, identical rankings.
  uint64_t retries = 0;
  for (const auto& q : FaultQueries(store, (*clean)->peer_ranges())) {
    auto faulted = (*lossy)->Search(q.terms, 20, /*origin=*/0);
    auto reference = (*clean)->Search(q.terms, 20, /*origin=*/0);
    EXPECT_FALSE(faulted.degraded);
    EXPECT_EQ(faulted.cost.keys_unreachable, 0u);
    ExpectSameResults(reference, faulted);
    retries += faulted.cost.retries;
  }
  EXPECT_GT(retries, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    OverlaysAndThreads, LossyBuildIdentityTest,
    ::testing::Combine(::testing::Values(OverlayKind::kPGrid,
                                         OverlayKind::kChord),
                       ::testing::Values(size_t{1}, size_t{4})),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == OverlayKind::kPGrid
                             ? "pgrid"
                             : "chord") +
             "_t" + std::to_string(std::get<1>(info.param));
    });

TEST(LossyBuildIdentityTest, LossyBuildsAreThreadCountInvariant) {
  corpus::DocumentStore store;
  FaultCorpus().FillStore(240, &store);
  auto plan = net::FaultPlan::Parse("seed=13,loss=0.01");
  ASSERT_TRUE(plan.ok());

  HdkEngineConfig serial_config = FaultConfig(1);
  serial_config.faults = *plan;
  HdkEngineConfig parallel_config = FaultConfig(4);
  parallel_config.faults = *plan;

  auto serial = HdkSearchEngine::Build(serial_config, store,
                                       SplitEvenly(240, 4));
  auto parallel = HdkSearchEngine::Build(parallel_config, store,
                                         SplitEvenly(240, 4));
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());

  // The fault schedule is a pure hash of the message identity, so the
  // SAME messages are lost at any thread count: contents AND recorded
  // traffic agree counter for counter.
  ExpectSameContents((*serial)->global_index().ExportContents(),
                     (*parallel)->global_index().ExportContents());
  EXPECT_EQ((*serial)->traffic()->total(), (*parallel)->traffic()->total());
  for (size_t k = 0; k < net::kNumMessageKinds; ++k) {
    const auto kind = static_cast<net::MessageKind>(k);
    EXPECT_EQ((*serial)->traffic()->ByKind(kind),
              (*parallel)->traffic()->ByKind(kind))
        << net::MessageKindName(kind);
  }
}

TEST(ReplicaFailoverTest, ReplicaAnswersWhenResponsiblePeerDies) {
  corpus::DocumentStore store;
  FaultCorpus().FillStore(240, &store);
  HdkEngineConfig config = FaultConfig(1);
  config.replication = 2;
  auto engine = HdkSearchEngine::Build(config, store, SplitEvenly(240, 6));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const auto queries = FaultQueries(store, (*engine)->peer_ranges());
  std::vector<SearchResponse> baseline;
  for (const auto& q : queries) {
    baseline.push_back((*engine)->Search(q.terms, 20, /*origin=*/0));
  }

  // An unannounced hard failure of one peer: every key it was
  // responsible for is served by its replica holder instead — zero
  // degraded responses while any holder survives, identical rankings.
  (*engine)->fault_injector().KillPeer(3);
  uint64_t failovers = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto response = (*engine)->Search(queries[i].terms, 20, /*origin=*/0);
    EXPECT_FALSE(response.degraded) << "query " << i;
    EXPECT_EQ(response.cost.keys_unreachable, 0u);
    ExpectSameResults(baseline[i], response);
    failovers += response.cost.failovers;
  }
  EXPECT_GT(failovers, 0u);
  // The failed round trips pushed the dead peer's strain up.
  EXPECT_GT((*engine)->peer_health().strain(3), 0u);
}

TEST(GracefulDegradationTest, DeadPrimaryWithoutReplicasDegradesThenEvicts) {
  corpus::DocumentStore store;
  FaultCorpus().FillStore(240, &store);
  HdkEngineConfig config = FaultConfig(1);  // replication = 1
  auto engine = HdkSearchEngine::Build(config, store, SplitEvenly(240, 6));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const auto queries = FaultQueries(store, (*engine)->peer_ranges());

  // Single-homed keys + a dead peer: queries touching its key space
  // degrade (the lattice answers from the reachable keys) but still
  // return.
  (*engine)->fault_injector().KillPeer(2);
  uint64_t degraded = 0, unreachable = 0;
  for (const auto& q : queries) {
    auto response = (*engine)->Search(q.terms, 20, /*origin=*/0);
    degraded += response.degraded;
    unreachable += response.cost.keys_unreachable;
  }
  EXPECT_GT(degraded, 0u);
  EXPECT_GT(unreachable, 0u);

  // Eviction converts the unannounced failure into a standard departure:
  // the ledger-driven repair leaves an index identical to a fault-free
  // build over the survivors, and queries stop degrading.
  auto evicted = (*engine)->EvictDeadPeers(store);
  ASSERT_TRUE(evicted.ok()) << evicted.status().ToString();
  EXPECT_EQ(*evicted, 1u);
  ASSERT_EQ((*engine)->num_peers(), 5u);

  auto scratch = HdkSearchEngine::Build(FaultConfig(1), store,
                                        (*engine)->peer_ranges());
  ASSERT_TRUE(scratch.ok());
  ExpectSameContents((*scratch)->global_index().ExportContents(),
                     (*engine)->global_index().ExportContents());
  for (const auto& q : queries) {
    auto repaired = (*engine)->Search(q.terms, 20, /*origin=*/0);
    auto reference = (*scratch)->Search(q.terms, 20, /*origin=*/0);
    EXPECT_FALSE(repaired.degraded);
    ExpectSameResults(reference, repaired);
  }

  // Nothing left to evict.
  auto again = (*engine)->EvictDeadPeers(store);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

TEST(FaultySpecTest, DecoratorInstallsQueryTimeFaults) {
  corpus::DocumentStore store;
  FaultCorpus().FillStore(160, &store);
  EngineConfig config;
  config.hdk = FaultConfig().hdk;
  config.num_threads = 1;

  auto plain = MakeEngine("hdk", config, store, SplitEvenly(160, 4));
  auto faulty = MakeEngine("faulty:seed=7,loss=0.02(hdk)", config, store,
                           SplitEvenly(160, 4));
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();
  // The decorator carries no state: the engine name is the backend's.
  EXPECT_EQ((*faulty)->name(), "hdk");

  const std::vector<DocRange> ranges = SplitEvenly(160, 4);
  uint64_t retries = 0;
  for (const auto& q : FaultQueries(store, ranges)) {
    auto a = (*plain)->Search(q.terms, 20, /*origin=*/0);
    auto b = (*faulty)->Search(q.terms, 20, /*origin=*/0);
    EXPECT_FALSE(b.degraded);
    ExpectSameResults(a, b);
    retries += b.cost.retries;
  }
  EXPECT_GT(retries, 0u);

  // Malformed plans fail at build time; unsupported backends reject the
  // decorator (the centralized reference accepts it as a no-op).
  EXPECT_FALSE(
      MakeEngine("faulty:loss=2(hdk)", config, store, SplitEvenly(160, 4))
          .ok());
  EXPECT_TRUE(MakeEngine("faulty:seed=1,loss=0.1(bm25)", config, store,
                         SplitEvenly(160, 4))
                  .ok());
}

TEST(SingleTermFaultsTest, LossRetriesAndDeadOwnerDegrades) {
  corpus::DocumentStore store;
  FaultCorpus().FillStore(160, &store);
  EngineConfig config;
  config.num_threads = 1;

  auto clean = MakeEngine("single-term", config, store,
                          SplitEvenly(160, 4));
  ASSERT_TRUE(clean.ok());
  config.faults = *net::FaultPlan::Parse("seed=3,loss=0.02");
  auto lossy = MakeEngine("single-term", config, store,
                          SplitEvenly(160, 4));
  ASSERT_TRUE(lossy.ok());

  const std::vector<DocRange> ranges = SplitEvenly(160, 4);
  const auto queries = FaultQueries(store, ranges);
  uint64_t retries = 0;
  for (const auto& q : queries) {
    auto a = (*clean)->Search(q.terms, 20, /*origin=*/0);
    auto b = (*lossy)->Search(q.terms, 20, /*origin=*/0);
    EXPECT_FALSE(b.degraded);
    ExpectSameResults(a, b);
    retries += b.cost.retries;
  }
  EXPECT_GT(retries, 0u);

  // Terms are single-homed in the baseline: a dead owner degrades every
  // query that needs one of its terms (no replica to fail over to), but
  // the reachable terms still answer.
  auto* st = static_cast<SingleTermEngine*>((*lossy).get());
  st->fault_injector().KillPeer(2);
  uint64_t degraded = 0;
  for (const auto& q : queries) {
    auto response = (*lossy)->Search(q.terms, 20, /*origin=*/0);
    degraded += response.degraded;
    if (response.degraded) {
      EXPECT_GT(response.cost.keys_unreachable, 0u);
    }
  }
  EXPECT_GT(degraded, 0u);
}

}  // namespace
}  // namespace hdk::engine
