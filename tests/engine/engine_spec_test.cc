// The composable engine registry: EngineSpec parsing, the decorator
// registration seam, and the first decorator — the "cached(...)" bounded
// LRU result cache. Contract: identical ranked results to the undecorated
// engine, a non-zero hit rate on repeated workloads (hits answer with
// ZERO network counters), and full invalidation on any membership event.
#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/query_gen.h"
#include "corpus/stats.h"
#include "corpus/synthetic.h"
#include "engine/engine_factory.h"
#include "engine/membership.h"
#include "engine/partition.h"
#include "engine/result_cache.h"

namespace hdk::engine {
namespace {

corpus::SyntheticCorpus TestCorpus() {
  corpus::SyntheticConfig cfg;
  cfg.seed = 777;
  cfg.vocabulary_size = 3000;
  cfg.num_topics = 12;
  cfg.topic_width = 35;
  cfg.mean_doc_length = 50.0;
  cfg.topic_share = 0.7;
  return corpus::SyntheticCorpus(cfg);
}

EngineConfig TestConfig() {
  EngineConfig config;
  config.hdk.df_max = 10;
  config.hdk.very_frequent_threshold = 600;
  config.hdk.window = 8;
  config.hdk.s_max = 3;
  config.num_threads = 1;
  return config;
}

TEST(EngineSpecTest, ParsesBareKindsAndAliases) {
  for (EngineKind kind : kAllEngineKinds) {
    auto spec = EngineSpec::Parse(EngineKindName(kind));
    ASSERT_TRUE(spec.ok());
    EXPECT_EQ(spec->kind, kind);
    EXPECT_TRUE(spec->decorators.empty());
    EXPECT_EQ(spec->ToString(), EngineKindName(kind));
  }
  auto alias = EngineSpec::Parse("st");
  ASSERT_TRUE(alias.ok());
  EXPECT_EQ(alias->kind, EngineKind::kSingleTerm);
}

TEST(EngineSpecTest, ParsesDecoratorStacks) {
  auto spec = EngineSpec::Parse("cached(hdk)");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->kind, EngineKind::kHdk);
  ASSERT_EQ(spec->decorators.size(), 1u);
  EXPECT_EQ(spec->decorators[0].name, "cached");
  EXPECT_EQ(spec->decorators[0].arg, "");
  EXPECT_EQ(spec->ToString(), "cached(hdk)");

  auto with_arg = EngineSpec::Parse(" cached:256( single-term ) ");
  ASSERT_TRUE(with_arg.ok());
  EXPECT_EQ(with_arg->kind, EngineKind::kSingleTerm);
  ASSERT_EQ(with_arg->decorators.size(), 1u);
  EXPECT_EQ(with_arg->decorators[0].arg, "256");
  EXPECT_EQ(with_arg->ToString(), "cached:256(single-term)");

  auto nested = EngineSpec::Parse("cached:2(cached(bm25))");
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(nested->kind, EngineKind::kCentralized);
  ASSERT_EQ(nested->decorators.size(), 2u);
  EXPECT_EQ(nested->ToString(), "cached:2(cached(centralized))");
}

TEST(EngineSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(EngineSpec::Parse("").ok());
  EXPECT_FALSE(EngineSpec::Parse("warp-drive").ok());
  EXPECT_FALSE(EngineSpec::Parse("cached(hdk").ok());
  EXPECT_FALSE(EngineSpec::Parse("(hdk)").ok());
  EXPECT_FALSE(EngineSpec::Parse("cached()").ok());
  // A ':' promises an argument.
  EXPECT_FALSE(EngineSpec::Parse("cached:(hdk)").ok());
  EXPECT_FALSE(EngineSpec::Parse("cached: (hdk)").ok());
}

TEST(EngineSpecTest, RegistryListsBuiltinsAndRejectsUnknown) {
  auto names = RegisteredEngineDecorators();
  EXPECT_NE(std::find(names.begin(), names.end(), "cached"), names.end());
  // A well-formed spec with an unregistered decorator parses but cannot
  // build.
  corpus::DocumentStore store;
  TestCorpus().FillStore(40, &store);
  auto built = MakeEngine("superpeer(hdk)", TestConfig(), store,
                          SplitEvenly(40, 2));
  EXPECT_FALSE(built.ok());
  // Registration is idempotent-checked: the builtin name is taken.
  EXPECT_FALSE(RegisterEngineDecorator(
      "cached", [](std::unique_ptr<SearchEngine> inner, std::string_view,
                   const EngineConfig&)
          -> Result<std::unique_ptr<SearchEngine>> {
        return std::move(inner);
      }));
  // A bad capacity argument fails at build time.
  EXPECT_FALSE(MakeEngine("cached:zero(hdk)", TestConfig(), store,
                          SplitEvenly(40, 2))
                   .ok());
}

class CachedEngineTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  void SetUp() override {
    TestCorpus().FillStore(160, &store_);
    corpus::CollectionStats stats(store_);
    corpus::QueryGenConfig qcfg;
    qcfg.min_term_df = 3;
    queries_ = corpus::QueryGenerator(qcfg, store_, stats).Generate(20);
    // Distinct queries only — the hit/miss arithmetic below relies on the
    // first pass being all misses.
    std::vector<corpus::Query> distinct;
    for (const auto& q : queries_) {
      const bool seen =
          std::any_of(distinct.begin(), distinct.end(),
                      [&](const corpus::Query& d) {
                        return d.terms == q.terms;
                      });
      if (!seen) distinct.push_back(q);
    }
    queries_ = std::move(distinct);
    ASSERT_GT(queries_.size(), 5u);
  }

  corpus::DocumentStore store_;
  std::vector<corpus::Query> queries_;
};

TEST_P(CachedEngineTest, IdenticalResultsWithNonZeroHitRate) {
  const std::string spec =
      "cached(" + std::string(EngineKindName(GetParam())) + ")";
  auto cached = MakeEngine(spec, TestConfig(), store_, SplitEvenly(160, 4));
  auto plain = MakeEngine(GetParam(), TestConfig(), store_,
                          SplitEvenly(160, 4));
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ((*cached)->name(), spec);
  EXPECT_EQ((*cached)->num_documents(), (*plain)->num_documents());
  EXPECT_EQ((*cached)->num_peers(), (*plain)->num_peers());

  // A repeated-query batch: the second half replays the first half.
  std::vector<corpus::Query> repeated = queries_;
  repeated.insert(repeated.end(), queries_.begin(), queries_.end());

  BatchResponse from_cached = (*cached)->SearchBatch(repeated, 20);
  BatchResponse from_plain = (*plain)->SearchBatch(repeated, 20);
  ASSERT_EQ(from_cached.responses.size(), from_plain.responses.size());
  for (size_t i = 0; i < repeated.size(); ++i) {
    const auto& a = from_cached.responses[i].results;
    const auto& b = from_plain.responses[i].results;
    ASSERT_EQ(a.size(), b.size()) << "query " << i;
    for (size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].doc, b[j].doc);
      EXPECT_DOUBLE_EQ(a[j].score, b[j].score);
    }
  }
  // Every repeat hit; hits surface through QueryCost and carry zero
  // network counters.
  EXPECT_EQ(from_cached.total.cache_hits, queries_.size());
  EXPECT_EQ(from_cached.total.cache_misses, queries_.size());
  EXPECT_EQ(from_plain.total.cache_hits, 0u);
  for (size_t i = queries_.size(); i < repeated.size(); ++i) {
    const QueryCost& cost = from_cached.responses[i].cost;
    EXPECT_EQ(cost.cache_hits, 1u);
    EXPECT_EQ(cost.messages, 0u);
    EXPECT_EQ(cost.postings_fetched, 0u);
  }

  auto* decorator = static_cast<ResultCacheEngine*>((*cached).get());
  EXPECT_DOUBLE_EQ(decorator->hit_rate(), 0.5);
}

TEST_P(CachedEngineTest, MembershipEventsInvalidateTheCache) {
  auto cached = MakeEngine(
      "cached(" + std::string(EngineKindName(GetParam())) + ")",
      TestConfig(), store_, SplitEvenly(120, 3));
  ASSERT_TRUE(cached.ok());
  auto* decorator = static_cast<ResultCacheEngine*>((*cached).get());

  (void)(*cached)->SearchBatch(queries_, 20);
  EXPECT_GT(decorator->size(), 0u);

  // A join wave changes the document set: stale entries must go.
  ASSERT_TRUE((*cached)->AddPeers(store_, JoinRanges(120, 1, 40)).ok());
  EXPECT_EQ(decorator->size(), 0u);
  EXPECT_EQ((*cached)->num_documents(), 160u);

  // Post-join answers must match an uncached engine built at this state.
  auto plain = MakeEngine(GetParam(), TestConfig(), store_,
                          SplitEvenly(160, 4));
  ASSERT_TRUE(plain.ok());
  for (const auto& q : queries_) {
    auto a = (*cached)->Search(q.terms, 20, /*origin=*/0);
    auto b = (*plain)->Search(q.terms, 20, /*origin=*/0);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (size_t j = 0; j < a.results.size(); ++j) {
      EXPECT_EQ(a.results[j].doc, b.results[j].doc);
    }
  }

  // Departures invalidate too (distributed backends).
  if (GetParam() != EngineKind::kCentralized) {
    (void)(*cached)->Search(queries_[0].terms, 20);
    EXPECT_GT(decorator->size(), 0u);
    ASSERT_TRUE(
        (*cached)
            ->ApplyMembership(store_, {MembershipEvent::Leave(1)})
            .ok());
    EXPECT_EQ(decorator->size(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngineKinds, CachedEngineTest,
                         ::testing::ValuesIn(kAllEngineKinds),
                         [](const auto& info) {
                           std::string name(EngineKindName(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(CachedEngineTest2, LruEvictsBeyondCapacity) {
  corpus::DocumentStore store;
  TestCorpus().FillStore(80, &store);
  auto cached =
      MakeEngine("cached:2(centralized)", TestConfig(), store,
                 SplitEvenly(80, 2));
  ASSERT_TRUE(cached.ok());
  auto* decorator = static_cast<ResultCacheEngine*>((*cached).get());
  EXPECT_EQ(decorator->capacity(), 2u);

  const std::vector<TermId> q1{1, 2}, q2{3, 4}, q3{5, 6};
  (void)(*cached)->Search(q1, 10);
  (void)(*cached)->Search(q2, 10);
  (void)(*cached)->Search(q3, 10);  // evicts q1
  EXPECT_EQ(decorator->size(), 2u);
  auto r = (*cached)->Search(q1, 10);  // miss again
  EXPECT_EQ(r.cost.cache_misses, 1u);
  EXPECT_EQ(decorator->hits(), 0u);
  EXPECT_EQ(decorator->misses(), 4u);

  // Same terms, different k: a distinct cache entry.
  (void)(*cached)->Search(q1, 10);
  EXPECT_EQ(decorator->hits(), 1u);
  auto different_k = (*cached)->Search(q1, 5);
  EXPECT_EQ(different_k.cost.cache_misses, 1u);
}

TEST(CachedEngineTest2, NestedDecoratorsCompose) {
  corpus::DocumentStore store;
  TestCorpus().FillStore(80, &store);
  auto nested = MakeEngine("cached:4(cached:8(hdk))", TestConfig(), store,
                           SplitEvenly(80, 2));
  ASSERT_TRUE(nested.ok()) << nested.status().ToString();
  EXPECT_EQ((*nested)->name(), "cached(cached(hdk))");
  const std::vector<TermId> q{1, 2};
  auto first = (*nested)->Search(q, 10);
  auto second = (*nested)->Search(q, 10);
  EXPECT_EQ(second.cost.cache_hits, 1u);
  ASSERT_EQ(first.results.size(), second.results.size());
}

}  // namespace
}  // namespace hdk::engine
