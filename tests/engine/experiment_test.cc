#include "engine/experiment.h"

#include <gtest/gtest.h>

namespace hdk::engine {
namespace {

TEST(ExperimentSetupTest, ScaledDefaultsDeriveThresholds) {
  ExperimentSetup s = ExperimentSetup::ScaledDefault();
  // 28 peers x 300 docs = 8,400 docs at the top of the sweep.
  EXPECT_EQ(s.MaxDocuments(), 8400u);
  // DFmax fractions mirror the paper's 400/140k and 500/140k.
  EXPECT_EQ(s.DfMaxLow(), 24u);
  EXPECT_EQ(s.DfMaxHigh(), 30u);
  EXPECT_GT(s.DeriveFf(), 1000u);
  EXPECT_LT(s.DeriveFf(), 100000u);
}

TEST(ExperimentSetupTest, PeerSweepMatchesPaper) {
  ExperimentSetup s = ExperimentSetup::ScaledDefault();
  EXPECT_EQ(s.PeerSweep(),
            (std::vector<uint32_t>{4, 8, 12, 16, 20, 24, 28}));
}

TEST(ExperimentSetupTest, MakeParamsUsesPaperConstants) {
  ExperimentSetup s = ExperimentSetup::ScaledDefault();
  HdkParams p = s.MakeParams(s.DfMaxLow());
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_EQ(p.window, 20u);  // paper Table 2
  EXPECT_EQ(p.s_max, 3u);    // paper Table 2
  EXPECT_EQ(p.df_max, 24u);
}

TEST(ExperimentSetupTest, TinyIsSmallerButValid) {
  ExperimentSetup t = ExperimentSetup::Tiny();
  EXPECT_LT(t.MaxDocuments(), ExperimentSetup::ScaledDefault().MaxDocuments());
  EXPECT_TRUE(t.corpus.Validate().ok());
  EXPECT_TRUE(t.MakeParams(t.DfMaxLow()).Validate().ok());
}

TEST(ExperimentContextTest, GrowsMonotonically) {
  ExperimentContext ctx(ExperimentSetup::Tiny());
  const auto& s1 = ctx.GrowTo(50);
  EXPECT_EQ(s1.size(), 50u);
  const auto& s2 = ctx.GrowTo(100);
  EXPECT_EQ(s2.size(), 100u);
  // Growth is append-only: same object.
  EXPECT_EQ(&s1, &s2);
}

TEST(ExperimentContextTest, StatsTrackCurrentSize) {
  ExperimentContext ctx(ExperimentSetup::Tiny());
  const auto& stats = ctx.StatsFor(60);
  EXPECT_EQ(stats.num_documents(), 60u);
  const auto& stats2 = ctx.StatsFor(90);
  EXPECT_EQ(stats2.num_documents(), 90u);
}

TEST(ExperimentContextTest, QueriesMatchWorkloadShape) {
  ExperimentContext ctx(ExperimentSetup::Tiny());
  auto queries = ctx.MakeQueries(200, 40);
  ASSERT_GT(queries.size(), 10u);
  for (const auto& q : queries) {
    EXPECT_GE(q.size(), 2u);
    EXPECT_LE(q.size(), 8u);
  }
}

TEST(ExperimentContextTest, BuildEnginesAtTinyPoint) {
  ExperimentSetup setup = ExperimentSetup::Tiny();
  ExperimentContext ctx(setup);
  auto point = BuildEnginesAtPoint(ctx, setup.initial_peers);
  ASSERT_TRUE(point.ok()) << point.status().ToString();
  EXPECT_EQ(point->num_peers, setup.initial_peers);
  EXPECT_EQ(point->num_docs,
            static_cast<uint64_t>(setup.initial_peers) *
                setup.docs_per_peer);
  ASSERT_NE(point->hdk_low, nullptr);
  ASSERT_NE(point->hdk_high, nullptr);
  ASSERT_NE(point->st, nullptr);
  // The low-DFmax engine produces at least as many multi-term keys.
  EXPECT_GE(point->hdk_low->global_index().TotalKeys(),
            point->hdk_high->global_index().TotalKeys());
}

}  // namespace
}  // namespace hdk::engine
