#include "engine/hdk_engine.h"

#include <gtest/gtest.h>

#include "corpus/synthetic.h"
#include "hdk/indexer.h"

namespace hdk::engine {
namespace {

class HdkEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus::SyntheticConfig cfg;
    cfg.seed = 555;
    cfg.vocabulary_size = 3000;
    cfg.num_topics = 12;
    cfg.topic_width = 35;
    cfg.mean_doc_length = 50.0;
    corpus::SyntheticCorpus corpus(cfg);
    corpus.FillStore(160, &store_);

    config_.hdk.df_max = 10;
    config_.hdk.very_frequent_threshold = 600;
    config_.hdk.window = 8;
    config_.hdk.s_max = 3;
  }

  corpus::DocumentStore store_;
  HdkEngineConfig config_;
};

// SplitEvenly/JoinRanges are covered by tests/engine/partition_test.cc.

TEST_F(HdkEngineTest, BuildsAndSearches) {
  auto built =
      HdkSearchEngine::Build(config_, store_, SplitEvenly(160, 4));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto& engine = *built;
  EXPECT_EQ(engine->num_peers(), 4u);
  EXPECT_EQ(engine->num_documents(), 160u);

  std::vector<TermId> query{store_.Tokens(3)[0], store_.Tokens(3)[1]};
  auto exec = engine->Search(query, 20);
  EXPECT_LE(exec.results.size(), 20u);
}

TEST_F(HdkEngineTest, MatchesCentralizedReference) {
  auto built =
      HdkSearchEngine::Build(config_, store_, SplitEvenly(160, 4));
  ASSERT_TRUE(built.ok());

  corpus::CollectionStats stats(store_);
  hdk::CentralizedHdkIndexer reference(config_.hdk);
  auto expected = reference.Build(store_, stats);
  ASSERT_TRUE(expected.ok());

  auto actual = (*built)->global_index().ExportContents();
  EXPECT_EQ(actual.size(), expected->size());
  EXPECT_EQ(actual.StoredPostings(), expected->StoredPostings());
}

TEST_F(HdkEngineTest, PerPeerMetricsConsistent) {
  auto built =
      HdkSearchEngine::Build(config_, store_, SplitEvenly(160, 4));
  ASSERT_TRUE(built.ok());
  auto& engine = *built;

  EXPECT_NEAR(engine->StoredPostingsPerPeer() * 4.0,
              static_cast<double>(
                  engine->global_index().TotalStoredPostings()),
              1e-6);
  EXPECT_NEAR(
      engine->InsertedPostingsPerPeer() * 4.0,
      static_cast<double>(engine->indexing_report().TotalInsertedPostings()),
      1e-6);
  // HDK indexing inserts more than it stores (NDK truncation).
  EXPECT_GE(engine->InsertedPostingsPerPeer(),
            engine->StoredPostingsPerPeer());
}

TEST_F(HdkEngineTest, SearchRotatesOriginByDefault) {
  auto built =
      HdkSearchEngine::Build(config_, store_, SplitEvenly(160, 4));
  ASSERT_TRUE(built.ok());
  auto& engine = *built;
  std::vector<TermId> query{store_.Tokens(0)[0]};
  // Rotation must not affect results.
  auto a = engine->Search(query, 10);
  auto b = engine->Search(query, 10);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].doc, b.results[i].doc);
  }
}

TEST_F(HdkEngineTest, RejectsInvalidConfig) {
  HdkEngineConfig bad = config_;
  bad.hdk.df_max = 0;
  EXPECT_FALSE(HdkSearchEngine::Build(bad, store_, SplitEvenly(160, 4)).ok());
  EXPECT_FALSE(HdkSearchEngine::Build(config_, store_, {}).ok());
}

TEST_F(HdkEngineTest, ChordOverlayWorksToo) {
  HdkEngineConfig chord = config_;
  chord.overlay = OverlayKind::kChord;
  auto built = HdkSearchEngine::Build(chord, store_, SplitEvenly(160, 4));
  ASSERT_TRUE(built.ok());
  std::vector<TermId> query{store_.Tokens(0)[0], store_.Tokens(0)[2]};
  auto exec = (*built)->Search(query, 10);
  EXPECT_LE(exec.results.size(), 10u);
}

}  // namespace
}  // namespace hdk::engine
