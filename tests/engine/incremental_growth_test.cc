// The incremental-lifecycle guarantee of the unified SearchEngine API:
// growing an engine with AddPeers (the paper's "peers join in waves with
// their documents" evolution) produces EXACTLY the state of a from-scratch
// build over the final collection — posting-for-posting for the HDK global
// index, including HDK -> NDK reclassification of keys whose document
// frequency crossed DFmax and the purge of terms that crossed the
// very-frequent threshold Ff.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/query_gen.h"
#include "corpus/stats.h"
#include "corpus/synthetic.h"
#include "engine/centralized.h"
#include "engine/experiment.h"
#include "engine/hdk_engine.h"
#include "engine/partition.h"
#include "engine/st_engine.h"
#include "hdk/indexer.h"

namespace hdk::engine {
namespace {

corpus::SyntheticCorpus GrowthCorpus() {
  corpus::SyntheticConfig cfg;
  cfg.seed = 90210;
  cfg.vocabulary_size = 3000;
  cfg.num_topics = 12;
  cfg.topic_width = 35;
  cfg.mean_doc_length = 50.0;
  cfg.topic_share = 0.7;
  return corpus::SyntheticCorpus(cfg);
}

HdkEngineConfig GrowthConfig() {
  HdkEngineConfig config;
  config.hdk.df_max = 8;
  config.hdk.very_frequent_threshold = 450;
  config.hdk.window = 8;
  config.hdk.s_max = 3;
  return config;
}

void ExpectSameContents(const hdk::HdkIndexContents& a,
                        const hdk::HdkIndexContents& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, entry] : a.entries()) {
    const hdk::KeyEntry* other = b.Find(key);
    ASSERT_NE(other, nullptr) << "missing key " << key.ToString();
    EXPECT_EQ(entry.global_df, other->global_df) << key.ToString();
    EXPECT_EQ(entry.is_hdk, other->is_hdk) << key.ToString();
    EXPECT_EQ(entry.postings, other->postings) << key.ToString();
  }
}

TEST(IncrementalGrowthTest, HdkAddPeersEqualsFromScratchBuild) {
  corpus::SyntheticCorpus corpus = GrowthCorpus();
  corpus::DocumentStore store;

  // Incrementally grown engine: 2 peers over 120 docs, then two waves of
  // 2 peers with 60 docs each.
  corpus.FillStore(120, &store);
  auto grown = HdkSearchEngine::Build(GrowthConfig(), store,
                                      SplitEvenly(120, 2));
  ASSERT_TRUE(grown.ok()) << grown.status().ToString();

  uint64_t reclassified = 0;
  corpus.FillStore(240, &store);
  ASSERT_TRUE((*grown)->AddPeers(store, JoinRanges(120, 2, 60)).ok());
  reclassified += (*grown)->last_growth().reclassified_keys;
  corpus.FillStore(360, &store);
  ASSERT_TRUE((*grown)->AddPeers(store, JoinRanges(240, 2, 60)).ok());
  reclassified += (*grown)->last_growth().reclassified_keys;
  ASSERT_EQ((*grown)->num_peers(), 6u);
  ASSERT_EQ((*grown)->num_documents(), 360u);

  // The growth must have exercised the hard path: keys crossing DFmax.
  EXPECT_GT(reclassified, 0u);

  // From-scratch reference over the final collection.
  auto scratch = HdkSearchEngine::Build(GrowthConfig(), store,
                                        SplitEvenly(360, 6));
  ASSERT_TRUE(scratch.ok());

  // Posting-for-posting identical global index...
  ExpectSameContents((*scratch)->global_index().ExportContents(),
                     (*grown)->global_index().ExportContents());
  EXPECT_EQ((*grown)->global_index().TotalStoredPostings(),
            (*scratch)->global_index().TotalStoredPostings());
  // ...and identical retrieval behaviour.
  corpus::CollectionStats stats(store);
  corpus::QueryGenConfig qcfg;
  qcfg.min_term_df = 3;
  auto queries = corpus::QueryGenerator(qcfg, store, stats).Generate(30);
  ASSERT_GT(queries.size(), 10u);
  for (const auto& q : queries) {
    auto a = (*grown)->Search(q.terms, 20, /*origin=*/0);
    auto b = (*scratch)->Search(q.terms, 20, /*origin=*/0);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (size_t i = 0; i < a.results.size(); ++i) {
      EXPECT_EQ(a.results[i].doc, b.results[i].doc);
      EXPECT_NEAR(a.results[i].score, b.results[i].score, 1e-12);
    }
    EXPECT_EQ(a.cost.postings_fetched, b.cost.postings_fetched);
  }
}

TEST(IncrementalGrowthTest, HdkGrowthMatchesCentralizedReference) {
  // The distributed invariant holds through growth: the grown engine's
  // logical index equals the centralized indexer's output on the final
  // collection.
  corpus::SyntheticCorpus corpus = GrowthCorpus();
  corpus::DocumentStore store;
  corpus.FillStore(120, &store);
  auto grown = HdkSearchEngine::Build(GrowthConfig(), store,
                                      SplitEvenly(120, 3));
  ASSERT_TRUE(grown.ok());
  corpus.FillStore(240, &store);
  ASSERT_TRUE((*grown)->AddPeers(store, JoinRanges(120, 3, 40)).ok());

  corpus::CollectionStats stats(store);
  hdk::CentralizedHdkIndexer reference(GrowthConfig().hdk);
  auto expected = reference.Build(store, stats);
  ASSERT_TRUE(expected.ok());
  ExpectSameContents(*expected,
                     (*grown)->global_index().ExportContents());
}

TEST(IncrementalGrowthTest, DfMaxCrossingAndVeryFrequentPurge) {
  // A handcrafted collection that forces the two delicate growth paths
  // deterministically:
  //   * term 1 crosses the very-frequent threshold Ff only after the
  //     second wave of documents -> its keys must be purged,
  //   * term 2's document frequency crosses DFmax only after the second
  //     wave -> its key must be reclassified HDK -> NDK and expanded into
  //     pairs by the OLD peers that contributed it.
  HdkEngineConfig config;
  config.hdk.df_max = 8;
  config.hdk.very_frequent_threshold = 25;
  config.hdk.window = 8;
  config.hdk.s_max = 3;

  corpus::DocumentStore store;
  auto filler = [](DocId d, uint32_t i) -> TermId {
    return 1000 + d * 16 + i;  // unique background terms
  };
  auto add_doc = [&](std::vector<TermId> front) {
    const DocId d = static_cast<DocId>(store.size());
    while (front.size() < 12) {
      front.push_back(filler(d, static_cast<uint32_t>(front.size())));
    }
    store.Add(std::move(front));
  };

  // Wave 1: 60 documents on 2 peers.
  for (DocId d = 0; d < 60; ++d) {
    std::vector<TermId> front;
    if (d < 20) front.push_back(1);             // cf(1) = 20 <= 25
    if (d >= 20 && d < 26) {
      front.push_back(2);                       // df(2) = 6 <= 8: HDK {2}
      front.push_back(3);                       // {2,3} co-occur in-window
    }
    if (d >= 26 && d < 38) front.push_back(3);  // df(3) = 18 > 8: NDK {3}
    add_doc(std::move(front));
  }
  auto grown = HdkSearchEngine::Build(config, store, SplitEvenly(60, 2));
  ASSERT_TRUE(grown.ok()) << grown.status().ToString();
  {
    const hdk::KeyEntry* e = (*grown)->global_index().Peek(hdk::TermKey{2});
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->is_hdk);
    // {2,3} cannot exist yet: {2} is still discriminative.
    EXPECT_EQ((*grown)->global_index().Peek(hdk::TermKey{2, 3}), nullptr);
  }

  // Wave 2: 60 more documents on 2 joining peers.
  for (DocId d = 60; d < 120; ++d) {
    std::vector<TermId> front;
    if (d < 75) front.push_back(1);             // cf(1) = 35 > 25: purged
    if (d >= 80 && d < 85) front.push_back(2);  // df(2) = 11 > 8: NDK now
    add_doc(std::move(front));
  }
  ASSERT_TRUE((*grown)->AddPeers(store, JoinRanges(60, 2, 30)).ok());

  const p2p::GrowthStats& g = (*grown)->last_growth();
  EXPECT_GE(g.new_very_frequent_terms, 1u);
  EXPECT_GE(g.purged_keys, 1u);
  EXPECT_GE(g.reclassified_keys, 1u);
  EXPECT_GE(g.rescanned_peers, 1u);  // an old peer expanded {2}

  // Term 1 left the key vocabulary; {2} is an NDK; the OLD peer that held
  // docs 20..26 expanded {2,3}, which a from-scratch build also produces.
  EXPECT_EQ((*grown)->global_index().Peek(hdk::TermKey{1}), nullptr);
  const hdk::KeyEntry* two = (*grown)->global_index().Peek(hdk::TermKey{2});
  ASSERT_NE(two, nullptr);
  EXPECT_FALSE(two->is_hdk);
  EXPECT_EQ(two->global_df, 11u);
  EXPECT_NE((*grown)->global_index().Peek(hdk::TermKey{2, 3}), nullptr);

  auto scratch = HdkSearchEngine::Build(config, store, SplitEvenly(120, 4));
  ASSERT_TRUE(scratch.ok());
  ExpectSameContents((*scratch)->global_index().ExportContents(),
                     (*grown)->global_index().ExportContents());
}

TEST(IncrementalGrowthTest, SingleTermAddPeersEqualsFromScratchBuild) {
  corpus::SyntheticCorpus corpus = GrowthCorpus();
  corpus::DocumentStore store;
  corpus.FillStore(120, &store);
  StEngineConfig config;
  auto grown = SingleTermEngine::Build(config, store, SplitEvenly(120, 2));
  ASSERT_TRUE(grown.ok());
  corpus.FillStore(240, &store);
  ASSERT_TRUE((*grown)->AddPeers(store, JoinRanges(120, 2, 60)).ok());

  auto scratch = SingleTermEngine::Build(config, store, SplitEvenly(240, 4));
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ((*grown)->p2p_engine().TotalStoredPostings(),
            (*scratch)->p2p_engine().TotalStoredPostings());
  // Per-peer placement matches too: the grown overlay is identical to the
  // from-scratch one, and fragments were handed over on join.
  for (PeerId p = 0; p < 4; ++p) {
    EXPECT_EQ((*grown)->p2p_engine().StoredPostingsAt(p),
              (*scratch)->p2p_engine().StoredPostingsAt(p));
  }

  corpus::CollectionStats stats(store);
  corpus::QueryGenConfig qcfg;
  qcfg.min_term_df = 3;
  auto queries = corpus::QueryGenerator(qcfg, store, stats).Generate(25);
  for (const auto& q : queries) {
    auto a = (*grown)->Search(q.terms, 20, /*origin=*/1);
    auto b = (*scratch)->Search(q.terms, 20, /*origin=*/1);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (size_t i = 0; i < a.results.size(); ++i) {
      EXPECT_EQ(a.results[i].doc, b.results[i].doc);
      EXPECT_NEAR(a.results[i].score, b.results[i].score, 1e-12);
    }
    EXPECT_EQ(a.cost.postings_fetched, b.cost.postings_fetched);
  }
}

TEST(IncrementalGrowthTest, CentralizedAddPeersEqualsFromScratchBuild) {
  corpus::SyntheticCorpus corpus = GrowthCorpus();
  corpus::DocumentStore store;
  corpus.FillStore(120, &store);
  auto grown = CentralizedBm25Engine::Build(store);
  ASSERT_TRUE(grown.ok());
  corpus.FillStore(240, &store);
  ASSERT_TRUE((*grown)->AddPeers(store, JoinRanges(120, 1, 120)).ok());
  EXPECT_EQ((*grown)->num_documents(), 240u);

  auto scratch = CentralizedBm25Engine::Build(store);
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ((*grown)->index().TotalPostings(),
            (*scratch)->index().TotalPostings());

  corpus::CollectionStats stats(store);
  corpus::QueryGenConfig qcfg;
  qcfg.min_term_df = 3;
  auto queries = corpus::QueryGenerator(qcfg, store, stats).Generate(25);
  for (const auto& q : queries) {
    auto a = (*grown)->Search(q.terms, 20);
    auto b = (*scratch)->Search(q.terms, 20);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (size_t i = 0; i < a.results.size(); ++i) {
      EXPECT_EQ(a.results[i].doc, b.results[i].doc);
    }
  }
}

TEST(IncrementalGrowthTest, ExperimentSweepGrowsWithoutRebuilding) {
  // The figure-bench harness: advancing the sweep must JOIN peers, not
  // rebuild — observable through the engines' identity and growth stats.
  ExperimentSetup setup = ExperimentSetup::Tiny();
  ExperimentContext ctx(setup);

  auto first = ctx.EnginesAt(setup.initial_peers);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  HdkSearchEngine* low_before = first->hdk_low;
  EXPECT_EQ(first->hdk_low->last_growth().joined_peers, 0u);

  const uint32_t next = setup.initial_peers + setup.peer_step;
  auto second = ctx.EnginesAt(next);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // Same engine object, grown in place.
  EXPECT_EQ(second->hdk_low, low_before);
  EXPECT_EQ(second->hdk_low->num_peers(), next);
  EXPECT_EQ(second->hdk_low->last_growth().joined_peers,
            static_cast<uint64_t>(setup.peer_step));
  EXPECT_GT(second->hdk_low->last_growth().delta_insertions, 0u);

  // Shrinking sweeps are rejected.
  EXPECT_FALSE(ctx.EnginesAt(setup.initial_peers).ok());
}

TEST(IncrementalGrowthTest, SmaxFourGrowthIsDeltaPrunedAndExact) {
  // The "larger keys" extension: with s_max = 4 the growth path uses the
  // generalized fresh-key-targeted walk at level 4 (it used to fall back
  // to a full rescan of every knowledge-gaining peer), and the grown
  // index must still equal a from-scratch build posting for posting.
  corpus::SyntheticCorpus corpus = GrowthCorpus();
  corpus::DocumentStore store;
  corpus.FillStore(120, &store);
  HdkEngineConfig config = GrowthConfig();
  config.hdk.s_max = 4;
  // A larger DFmax keeps the growth wave's fresh-fact set sparse (few
  // keys cross), which is exactly when delta pruning must pay off.
  config.hdk.df_max = 24;
  config.hdk.rare_threshold = 24;
  auto grown = HdkSearchEngine::Build(config, store, SplitEvenly(120, 2));
  ASSERT_TRUE(grown.ok()) << grown.status().ToString();
  const uint64_t level4_docs_before =
      (*grown)->indexing_report().levels[3].generation.documents_scanned;

  corpus.FillStore(240, &store);
  ASSERT_TRUE((*grown)->AddPeers(store, JoinRanges(120, 2, 60)).ok());
  const p2p::GrowthStats& g = (*grown)->last_growth();
  // The hard path ran: old peers gained knowledge and re-derived.
  EXPECT_GT(g.reclassified_keys, 0u);
  EXPECT_GT(g.rescanned_peers, 0u);

  // Delta-proportional growth cost: the growth step's level-4 scans must
  // stay strictly below the full-scan fallback's volume (each joining
  // peer's 60 documents scanned fully, plus 60 for every rescanned old
  // peer under the old fallback).
  const uint64_t level4_docs_delta =
      (*grown)->indexing_report().levels[3].generation.documents_scanned -
      level4_docs_before;
  EXPECT_LT(level4_docs_delta, 120u + g.rescanned_peers * 60u);

  auto scratch = HdkSearchEngine::Build(config, store, SplitEvenly(240, 4));
  ASSERT_TRUE(scratch.ok());
  ExpectSameContents((*scratch)->global_index().ExportContents(),
                     (*grown)->global_index().ExportContents());
}

}  // namespace
}  // namespace hdk::engine
