// Event-driven anti-entropy cadence (MaintenanceConfig): with
// sweep_every_events set, membership churn under a lossy replica-push
// plan triggers RunAntiEntropy-equivalent sweeps automatically — the
// engine ends churn with ZERO replica divergence without anyone calling
// RunAntiEntropy() by hand. Off by default: the control engine ends the
// same churn visibly diverged, and the default config stays byte-
// identical to the cadence-free engine.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "corpus/synthetic.h"
#include "engine/fingerprint.h"
#include "engine/hdk_engine.h"
#include "engine/membership.h"
#include "engine/partition.h"
#include "net/fault.h"
#include "sync/sync.h"

namespace hdk::engine {
namespace {

corpus::SyntheticCorpus CadenceCorpus() {
  corpus::SyntheticConfig cfg;
  cfg.seed = 4242;
  cfg.vocabulary_size = 3000;
  cfg.num_topics = 12;
  cfg.topic_width = 35;
  cfg.mean_doc_length = 50.0;
  cfg.topic_share = 0.7;
  return corpus::SyntheticCorpus(cfg);
}

HdkEngineConfig CadenceConfig(OverlayKind overlay, size_t num_threads) {
  HdkEngineConfig config;
  config.hdk.df_max = 8;
  config.hdk.very_frequent_threshold = 450;
  config.hdk.window = 8;
  config.hdk.s_max = 3;
  config.overlay = overlay;
  config.num_threads = num_threads;
  config.replication = 2;
  config.sync.mode = sync::SyncMode::kIbf;
  config.faults = *net::FaultPlan::Parse("seed=7,loss.ReplicaPush=0.4");
  return config;
}

// Join/leave/join churn; every batch is one or more maintenance events.
Status Churn(HdkSearchEngine& engine, const corpus::DocumentStore& store) {
  HDK_RETURN_NOT_OK(engine.ApplyMembership(store, JoinWave(240, 2, 40)));
  HDK_RETURN_NOT_OK(
      engine.ApplyMembership(store, {MembershipEvent::Leave(1)}));
  return engine.ApplyMembership(store, JoinWave(320, 2, 40));
}

class MaintenanceCadenceTest
    : public ::testing::TestWithParam<OverlayKind> {};

INSTANTIATE_TEST_SUITE_P(BothOverlays, MaintenanceCadenceTest,
                         ::testing::Values(OverlayKind::kPGrid,
                                           OverlayKind::kChord),
                         [](const auto& info) {
                           return info.param == OverlayKind::kPGrid
                                      ? "pgrid"
                                      : "chord";
                         });

TEST_P(MaintenanceCadenceTest, ChurnSelfHealsWithoutManualSweeps) {
  corpus::SyntheticCorpus corpus = CadenceCorpus();
  corpus::DocumentStore store;
  corpus.FillStore(400, &store);

  for (size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");

    // Control: cadence off. The lossy pushes leave divergence behind and
    // nothing sweeps it up.
    HdkEngineConfig off = CadenceConfig(GetParam(), threads);
    auto control = HdkSearchEngine::Build(off, store, SplitEvenly(240, 8));
    ASSERT_TRUE(control.ok()) << control.status().ToString();
    ASSERT_TRUE(Churn(**control, store).ok());
    EXPECT_EQ((*control)->maintenance_sweeps(), 0u);
    EXPECT_GT((*control)->global_index().CountReplicaDivergence(), 0u);

    // Cadence on: every churn batch counts toward the sweep trigger, and
    // the engine ends churn fully reconciled with no manual sweep.
    HdkEngineConfig on = CadenceConfig(GetParam(), threads);
    on.maintenance.sweep_every_events = 1;
    auto engine = HdkSearchEngine::Build(on, store, SplitEvenly(240, 8));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE(Churn(**engine, store).ok());
    EXPECT_GT((*engine)->maintenance_sweeps(), 0u);
    EXPECT_GT((*engine)->last_maintenance_sweep().pairs_checked, 0u);
    EXPECT_EQ((*engine)->global_index().CountReplicaDivergence(), 0u);

    // Sweeps only heal replicas — the published primaries are identical
    // to the cadence-free engine's, posting for posting.
    EXPECT_EQ(
        FingerprintContents((*engine)->global_index().ExportContents()),
        FingerprintContents((*control)->global_index().ExportContents()));
  }
}

TEST_P(MaintenanceCadenceTest, CoarseCadenceSweepsOnThresholdOnly) {
  corpus::SyntheticCorpus corpus = CadenceCorpus();
  corpus::DocumentStore store;
  corpus.FillStore(400, &store);

  // Threshold higher than any single batch: the first small batch must
  // NOT sweep, the accumulated count across batches must.
  HdkEngineConfig config = CadenceConfig(GetParam(), 1);
  config.maintenance.sweep_every_events = 3;
  auto built = HdkSearchEngine::Build(config, store, SplitEvenly(240, 8));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto engine = std::move(built).value();

  ASSERT_TRUE(
      engine->ApplyMembership(store, {MembershipEvent::Leave(1)}).ok());
  EXPECT_EQ(engine->maintenance_sweeps(), 0u);  // 1 of 3 events

  ASSERT_TRUE(engine->ApplyMembership(store, JoinWave(240, 2, 40)).ok());
  EXPECT_EQ(engine->maintenance_sweeps(), 1u);  // 3 of 3: swept, reset

  ASSERT_TRUE(
      engine->ApplyMembership(store, {MembershipEvent::Leave(2)}).ok());
  EXPECT_EQ(engine->maintenance_sweeps(), 1u);  // cadence restarted
  EXPECT_GT(engine->last_maintenance_sweep().pairs_checked, 0u);
}

TEST_P(MaintenanceCadenceTest, UnreplicatedEngineCountsButNeverSweeps) {
  corpus::SyntheticCorpus corpus = CadenceCorpus();
  corpus::DocumentStore store;
  corpus.FillStore(280, &store);

  HdkEngineConfig config = CadenceConfig(GetParam(), 1);
  config.replication = 1;  // nothing to reconcile
  config.sync = {};
  config.faults = {};
  config.maintenance.sweep_every_events = 1;
  auto built = HdkSearchEngine::Build(config, store, SplitEvenly(240, 8));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto engine = std::move(built).value();

  ASSERT_TRUE(
      engine->ApplyMembership(store, {MembershipEvent::Leave(1)}).ok());
  EXPECT_EQ(engine->maintenance_sweeps(), 0u);
}

}  // namespace
}  // namespace hdk::engine
