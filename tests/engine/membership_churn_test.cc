// The membership-lifecycle guarantee of the SearchEngine API: applying any
// sequence of join and DEPARTURE events leaves every backend
// posting-for-posting identical to a from-scratch build over the surviving
// document ranges — including the hard departure paths: reverse
// DFmax-reclassification (NDK -> HDK, full postings restored from the
// contribution ledger), retraction of keys whose knowledge basis left
// with the departed peer, and Ff re-admission of terms whose collection
// frequency fell back under the very-frequent threshold.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/query_gen.h"
#include "corpus/stats.h"
#include "corpus/synthetic.h"
#include "engine/centralized.h"
#include "engine/engine_factory.h"
#include "engine/hdk_engine.h"
#include "engine/membership.h"
#include "engine/partition.h"
#include "engine/st_engine.h"

namespace hdk::engine {
namespace {

corpus::SyntheticCorpus ChurnCorpus() {
  corpus::SyntheticConfig cfg;
  cfg.seed = 31337;
  cfg.vocabulary_size = 3000;
  cfg.num_topics = 12;
  cfg.topic_width = 35;
  cfg.mean_doc_length = 50.0;
  cfg.topic_share = 0.7;
  return corpus::SyntheticCorpus(cfg);
}

HdkEngineConfig ChurnConfig(size_t num_threads = 1) {
  HdkEngineConfig config;
  config.hdk.df_max = 8;
  config.hdk.very_frequent_threshold = 450;
  config.hdk.window = 8;
  config.hdk.s_max = 3;
  config.num_threads = num_threads;
  return config;
}

void ExpectSameContents(const hdk::HdkIndexContents& expected,
                        const hdk::HdkIndexContents& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (const auto& [key, entry] : expected.entries()) {
    const hdk::KeyEntry* other = actual.Find(key);
    ASSERT_NE(other, nullptr) << "missing key " << key.ToString();
    EXPECT_EQ(entry.global_df, other->global_df) << key.ToString();
    EXPECT_EQ(entry.is_hdk, other->is_hdk) << key.ToString();
    EXPECT_EQ(entry.postings, other->postings) << key.ToString();
  }
}

void ExpectSameSearches(SearchEngine& a, SearchEngine& b,
                        const corpus::DocumentStore& store,
                        std::span<const DocRange> ranges) {
  corpus::CollectionStats stats(store, ranges);
  corpus::QueryGenConfig qcfg;
  qcfg.min_term_df = 3;
  auto queries = corpus::QueryGenerator(qcfg, store, stats).Generate(25);
  ASSERT_GT(queries.size(), 10u);
  for (const auto& q : queries) {
    auto ra = a.Search(q.terms, 20, /*origin=*/0);
    auto rb = b.Search(q.terms, 20, /*origin=*/0);
    ASSERT_EQ(ra.results.size(), rb.results.size());
    for (size_t i = 0; i < ra.results.size(); ++i) {
      EXPECT_EQ(ra.results[i].doc, rb.results[i].doc);
      EXPECT_NEAR(ra.results[i].score, rb.results[i].score, 1e-12);
    }
    EXPECT_EQ(ra.cost.postings_fetched, rb.cost.postings_fetched);
    EXPECT_EQ(ra.cost.keys_fetched, rb.cost.keys_fetched);
  }
}

class HdkChurnIdentityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(HdkChurnIdentityTest, DepartureEqualsFromScratchBuild) {
  corpus::SyntheticCorpus corpus = ChurnCorpus();
  corpus::DocumentStore store;
  corpus.FillStore(360, &store);
  HdkEngineConfig config = ChurnConfig(GetParam());

  auto churned = HdkSearchEngine::Build(config, store, SplitEvenly(360, 6));
  ASSERT_TRUE(churned.ok()) << churned.status().ToString();

  // Two departures, including a renumbering-sensitive middle peer.
  ASSERT_TRUE((*churned)
                  ->ApplyMembership(store, {MembershipEvent::Leave(1),
                                            MembershipEvent::Leave(3)})
                  .ok());
  ASSERT_EQ((*churned)->num_peers(), 4u);
  EXPECT_EQ((*churned)->num_documents(), 240u);
  // The hard path ran: some key's df fell back under DFmax.
  EXPECT_GT((*churned)->last_departure().reverse_reclassified, 0u);
  EXPECT_GT((*churned)->last_departure().migrated_keys, 0u);

  const std::vector<DocRange> survivors = (*churned)->peer_ranges();
  ASSERT_EQ(survivors.size(), 4u);
  auto scratch = HdkSearchEngine::Build(config, store, survivors);
  ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();

  ExpectSameContents((*scratch)->global_index().ExportContents(),
                     (*churned)->global_index().ExportContents());
  EXPECT_EQ((*churned)->global_index().TotalStoredPostings(),
            (*scratch)->global_index().TotalStoredPostings());
  ExpectSameSearches(**churned, **scratch, store, survivors);
}

TEST_P(HdkChurnIdentityTest, JoinLeaveJoinSequenceIsExact) {
  corpus::SyntheticCorpus corpus = ChurnCorpus();
  corpus::DocumentStore store;
  corpus.FillStore(120, &store);
  HdkEngineConfig config = ChurnConfig(GetParam());
  // The Chord ring variant: departures must hold on both overlays.
  config.overlay = OverlayKind::kChord;

  auto churned = HdkSearchEngine::Build(config, store, SplitEvenly(120, 2));
  ASSERT_TRUE(churned.ok()) << churned.status().ToString();

  // Wave 1: two peers join, then one founding peer departs.
  corpus.FillStore(240, &store);
  {
    std::vector<MembershipEvent> events = JoinWave(120, 2, 60);
    events.push_back(MembershipEvent::Leave(0));
    ASSERT_TRUE((*churned)->ApplyMembership(store, events).ok());
  }
  ASSERT_EQ((*churned)->num_peers(), 3u);
  EXPECT_EQ((*churned)->num_documents(), 180u);
  EXPECT_EQ((*churned)->last_membership().joined_peers, 2u);
  EXPECT_EQ((*churned)->last_membership().departed_peers, 1u);

  // Wave 2: another join continues from the frontier (the departed range
  // stays a hole), then a second departure.
  corpus.FillStore(300, &store);
  {
    std::vector<MembershipEvent> events = JoinWave(240, 2, 30);
    events.push_back(MembershipEvent::Leave(2));
    ASSERT_TRUE((*churned)->ApplyMembership(store, events).ok());
  }
  ASSERT_EQ((*churned)->num_peers(), 4u);

  const std::vector<DocRange> survivors = (*churned)->peer_ranges();
  auto scratch = HdkSearchEngine::Build(config, store, survivors);
  ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
  ExpectSameContents((*scratch)->global_index().ExportContents(),
                     (*churned)->global_index().ExportContents());
  ExpectSameSearches(**churned, **scratch, store, survivors);
}

INSTANTIATE_TEST_SUITE_P(Threads, HdkChurnIdentityTest,
                         ::testing::Values(static_cast<size_t>(1),
                                           static_cast<size_t>(4)),
                         [](const auto& info) {
                           return "threads_" + std::to_string(info.param);
                         });

TEST(MembershipChurnTest, ReverseReclassificationAndFfReadmission) {
  // The handcrafted collection of the growth test's hard paths, churned
  // BACK: wave 2 pushed term 1 over Ff (purge) and term 2 over DFmax
  // (reclassification + expansion of {2,3} by old peers). Departing the
  // wave-2 peer that carried those occurrences must revert both — term 1
  // re-enters the key vocabulary (targeted delta re-scan), {2} flips back
  // to a full-posting HDK, and the expansion key {2,3} is RETRACTED
  // because the knowledge that generated it is gone.
  HdkEngineConfig config;
  config.hdk.df_max = 8;
  config.hdk.very_frequent_threshold = 25;
  config.hdk.window = 8;
  config.hdk.s_max = 3;

  corpus::DocumentStore store;
  auto filler = [](DocId d, uint32_t i) -> TermId {
    return 1000 + d * 16 + i;  // unique background terms
  };
  auto add_doc = [&](std::vector<TermId> front) {
    const DocId d = static_cast<DocId>(store.size());
    while (front.size() < 12) {
      front.push_back(filler(d, static_cast<uint32_t>(front.size())));
    }
    store.Add(std::move(front));
  };

  // Wave 1: 60 documents on 2 peers (cf(1) = 20, df(2) = 6, df(3) = 18).
  for (DocId d = 0; d < 60; ++d) {
    std::vector<TermId> front;
    if (d < 20) front.push_back(1);
    if (d >= 20 && d < 26) {
      front.push_back(2);
      front.push_back(3);
    }
    if (d >= 26 && d < 38) front.push_back(3);
    add_doc(std::move(front));
  }
  auto churned = HdkSearchEngine::Build(config, store, SplitEvenly(60, 2));
  ASSERT_TRUE(churned.ok()) << churned.status().ToString();

  // Wave 2: 60 documents on 2 joining peers. Peer 2 (docs 60..90) carries
  // everything that crosses the thresholds: cf(1) = 35 > 25, df(2) = 11 >
  // 8.
  for (DocId d = 60; d < 120; ++d) {
    std::vector<TermId> front;
    if (d >= 60 && d < 75) front.push_back(1);
    if (d >= 80 && d < 85) front.push_back(2);
    add_doc(std::move(front));
  }
  ASSERT_TRUE((*churned)->AddPeers(store, JoinRanges(60, 2, 30)).ok());
  EXPECT_EQ((*churned)->global_index().Peek(hdk::TermKey{1}), nullptr);
  EXPECT_NE((*churned)->global_index().Peek(hdk::TermKey{2, 3}), nullptr);

  // Churn the crossing peer out again.
  ASSERT_TRUE(
      (*churned)->ApplyMembership(store, {MembershipEvent::Leave(2)}).ok());
  const p2p::DepartureStats& d = (*churned)->last_departure();
  EXPECT_EQ(d.departed, 2u);
  EXPECT_GE(d.readmitted_terms, 1u);   // term 1: cf back to 20 <= 25
  EXPECT_GE(d.reverse_reclassified, 1u);  // {2}: df back to 6 <= 8
  EXPECT_GE(d.retracted_keys, 1u);     // {2,3} lost its basis
  EXPECT_GE(d.rescanned_peers, 1u);    // term-1 re-admission delta scans
  EXPECT_GT(d.repair_insertions, 0u);  // re-admitted keys travelled

  // Term 1 is a key again; {2} is a discriminative full-posting key; the
  // stale expansion {2,3} is gone.
  const hdk::KeyEntry* one = (*churned)->global_index().Peek(hdk::TermKey{1});
  ASSERT_NE(one, nullptr);
  EXPECT_EQ(one->global_df, 20u);
  const hdk::KeyEntry* two = (*churned)->global_index().Peek(hdk::TermKey{2});
  ASSERT_NE(two, nullptr);
  EXPECT_TRUE(two->is_hdk);
  EXPECT_EQ(two->global_df, 6u);
  EXPECT_EQ((*churned)->global_index().Peek(hdk::TermKey{2, 3}), nullptr);

  // And the whole index equals a from-scratch build over the survivors.
  const std::vector<DocRange> survivors = (*churned)->peer_ranges();
  ASSERT_EQ(survivors.size(), 3u);
  auto scratch = HdkSearchEngine::Build(config, store, survivors);
  ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
  ExpectSameContents((*scratch)->global_index().ExportContents(),
                     (*churned)->global_index().ExportContents());
}

TEST(MembershipChurnTest, SingleTermDepartureEqualsFromScratchBuild) {
  corpus::SyntheticCorpus corpus = ChurnCorpus();
  corpus::DocumentStore store;
  corpus.FillStore(240, &store);
  StEngineConfig config;
  config.num_threads = 1;
  config.overlay = OverlayKind::kChord;

  auto churned = SingleTermEngine::Build(config, store, SplitEvenly(240, 4));
  ASSERT_TRUE(churned.ok());
  ASSERT_TRUE((*churned)
                  ->ApplyMembership(store, {MembershipEvent::Leave(2)})
                  .ok());
  ASSERT_EQ((*churned)->num_peers(), 3u);
  EXPECT_EQ((*churned)->num_documents(), 180u);
  EXPECT_GT((*churned)->last_departure().removed_postings, 0u);

  const std::vector<DocRange>& survivors = (*churned)->peer_ranges();
  auto scratch = SingleTermEngine::Build(config, store, survivors);
  ASSERT_TRUE(scratch.ok());

  // Logical (placement-independent) identity, term by term.
  auto churned_contents = (*churned)->p2p_engine().ExportContents();
  auto scratch_contents = (*scratch)->p2p_engine().ExportContents();
  ASSERT_EQ(churned_contents.size(), scratch_contents.size());
  for (const auto& [term, pl] : scratch_contents) {
    auto it = churned_contents.find(term);
    ASSERT_NE(it, churned_contents.end()) << "missing term " << term;
    EXPECT_EQ(it->second, pl) << "term " << term;
  }
  ExpectSameSearches(**churned, **scratch, store, survivors);
}

TEST(MembershipChurnTest, CentralizedDepartureEqualsFromScratchBuild) {
  corpus::SyntheticCorpus corpus = ChurnCorpus();
  corpus::DocumentStore store;
  corpus.FillStore(240, &store);

  EngineConfig config;
  auto churned = MakeEngine(EngineKind::kCentralized, config, store,
                            SplitEvenly(240, 4));
  ASSERT_TRUE(churned.ok());
  ASSERT_TRUE((*churned)
                  ->ApplyMembership(store, {MembershipEvent::Leave(1),
                                            MembershipEvent::Leave(2)})
                  .ok());
  EXPECT_EQ((*churned)->num_documents(), 120u);

  auto* concrete = static_cast<CentralizedBm25Engine*>((*churned).get());
  const std::vector<DocRange>& survivors = concrete->peer_ranges();
  ASSERT_EQ(survivors.size(), 2u);
  auto scratch = MakeEngine(EngineKind::kCentralized, config, store,
                            survivors);
  ASSERT_TRUE(scratch.ok());
  auto* scratch_concrete =
      static_cast<CentralizedBm25Engine*>((*scratch).get());
  EXPECT_EQ(concrete->index().TotalPostings(),
            scratch_concrete->index().TotalPostings());
  EXPECT_EQ(concrete->index().vocabulary_size(),
            scratch_concrete->index().vocabulary_size());
  EXPECT_EQ(concrete->index().num_documents(),
            scratch_concrete->index().num_documents());
  ExpectSameSearches(**churned, **scratch, store, survivors);
}

TEST(MembershipChurnTest, ErrorPathsLeaveTheEngineUntouched) {
  corpus::SyntheticCorpus corpus = ChurnCorpus();
  corpus::DocumentStore store;
  corpus.FillStore(160, &store);

  for (EngineKind kind : kAllEngineKinds) {
    SCOPED_TRACE(EngineKindName(kind));
    EngineConfig config = {};
    config.hdk.df_max = 8;
    config.hdk.very_frequent_threshold = 450;
    config.hdk.window = 8;
    config.hdk.s_max = 3;
    // Overlapping build ranges would double-index shared documents and
    // corrupt later departures — rejected up front.
    EXPECT_FALSE(MakeEngine(kind, config, store, {{0, 50}, {25, 75}}).ok());

    auto engine = MakeEngine(kind, config, store, SplitEvenly(160, 4));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    const uint64_t docs_before = (*engine)->num_documents();
    const size_t peers_before = (*engine)->num_peers();

    // Departing an unknown peer.
    EXPECT_FALSE(
        (*engine)
            ->ApplyMembership(store, {MembershipEvent::Leave(99)})
            .ok());
    // Non-contiguous join range.
    EXPECT_FALSE(
        (*engine)
            ->ApplyMembership(store,
                              {MembershipEvent::Join({500, 540})})
            .ok());
    // A batch whose LAST event is invalid is rejected up front — the
    // valid prefix must not have been applied.
    EXPECT_FALSE(
        (*engine)
            ->ApplyMembership(store, {MembershipEvent::Leave(0),
                                      MembershipEvent::Leave(77)})
            .ok());
    // Empty batches and foreign stores.
    EXPECT_FALSE((*engine)
                     ->ApplyMembership(store,
                                       std::span<const MembershipEvent>())
                     .ok());
    corpus::DocumentStore other;
    ChurnCorpus().FillStore(160, &other);
    EXPECT_FALSE(
        (*engine)
            ->ApplyMembership(other, {MembershipEvent::Leave(0)})
            .ok());

    EXPECT_EQ((*engine)->num_documents(), docs_before);
    EXPECT_EQ((*engine)->num_peers(), peers_before);

    // Departing down to one peer is fine; departing the LAST peer is not.
    if (kind != EngineKind::kCentralized) {
      ASSERT_TRUE((*engine)
                      ->ApplyMembership(store, {MembershipEvent::Leave(3),
                                                MembershipEvent::Leave(2),
                                                MembershipEvent::Leave(1)})
                      .ok());
      EXPECT_EQ((*engine)->num_peers(), 1u);
    } else {
      ASSERT_TRUE((*engine)
                      ->ApplyMembership(store, {MembershipEvent::Leave(3),
                                                MembershipEvent::Leave(2),
                                                MembershipEvent::Leave(1)})
                      .ok());
    }
    EXPECT_FALSE(
        (*engine)->ApplyMembership(store, {MembershipEvent::Leave(0)}).ok());
  }
}

TEST(MembershipChurnTest, BatchOriginsStayInsideTheLivePeerSet) {
  // The rotation state can point past the shrunk peer set right after a
  // departure; SearchBatch's pre-assigned origins must all resolve inside
  // the live peers (this used to index out of the peer array).
  corpus::SyntheticCorpus corpus = ChurnCorpus();
  corpus::DocumentStore store;
  corpus.FillStore(240, &store);
  HdkEngineConfig config = ChurnConfig();

  auto engine = HdkSearchEngine::Build(config, store, SplitEvenly(240, 6));
  ASSERT_TRUE(engine.ok());

  corpus::CollectionStats stats(store);
  corpus::QueryGenConfig qcfg;
  qcfg.min_term_df = 3;
  auto queries = corpus::QueryGenerator(qcfg, store, stats).Generate(20);
  ASSERT_GT(queries.size(), 10u);

  // Advance the rotation close to the high peer ids, then shrink hard.
  for (int i = 0; i < 5; ++i) {
    (void)(*engine)->Search(queries[0].terms, 5);
  }
  ASSERT_TRUE((*engine)
                  ->ApplyMembership(store, {MembershipEvent::Leave(5),
                                            MembershipEvent::Leave(4),
                                            MembershipEvent::Leave(3),
                                            MembershipEvent::Leave(2)})
                  .ok());
  ASSERT_EQ((*engine)->num_peers(), 2u);

  auto batch = (*engine)->SearchBatch(queries, 10);
  ASSERT_EQ(batch.responses.size(), queries.size());
  for (const auto& response : batch.responses) {
    EXPECT_LE(response.results.size(), 10u);
  }
}

}  // namespace
}  // namespace hdk::engine
