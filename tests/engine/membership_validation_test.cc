// Error paths of the membership lifecycle: ValidateMembershipEvents is
// the shared ApplyMembership precondition, every backend dry-runs the
// WHOLE batch through it before touching anything — so a rejected batch
// must leave the engine byte-for-byte untouched, even when the batch has
// a valid prefix.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/synthetic.h"
#include "engine/engine_factory.h"
#include "engine/membership.h"
#include "engine/partition.h"

namespace hdk::engine {
namespace {

using Kind = MembershipEvent::Kind;

TEST(ValidateMembershipEventsTest, EmptyBatchIsInvalid) {
  Status status = ValidateMembershipEvents({}, /*num_peers=*/3,
                                           /*frontier=*/120,
                                           /*store_size=*/120);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "ApplyMembership: need >= 1 membership event");
}

TEST(ValidateMembershipEventsTest, JoinsMustContinueFromFrontier) {
  // Gap, overlap with the indexed prefix, backwards range, past the
  // store: all violate the contiguity rule.
  for (DocRange bad : {DocRange{130, 160}, DocRange{100, 160},
                       DocRange{120, 110}, DocRange{120, 9999}}) {
    std::vector<MembershipEvent> events = {MembershipEvent::Join(bad)};
    Status status =
        ValidateMembershipEvents(events, 3, /*frontier=*/120,
                                 /*store_size=*/240);
    EXPECT_EQ(status.code(), StatusCode::kOutOfRange) << bad.first;
  }
  // The frontier advances across the batch: two contiguous joins pass,
  // a repeat of the first range (now behind the frontier) fails.
  std::vector<MembershipEvent> good = {
      MembershipEvent::Join({120, 180}), MembershipEvent::Join({180, 240})};
  EXPECT_TRUE(ValidateMembershipEvents(good, 3, 120, 240).ok());
  good.push_back(MembershipEvent::Join({120, 180}));
  EXPECT_EQ(ValidateMembershipEvents(good, 3, 120, 240).code(),
            StatusCode::kOutOfRange);
}

TEST(ValidateMembershipEventsTest, DepartureOfUnknownPeer) {
  std::vector<MembershipEvent> events = {MembershipEvent::Leave(7)};
  Status status = ValidateMembershipEvents(events, /*num_peers=*/3, 120, 120);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "ApplyMembership: departure of unknown peer 7");
  // Ids are validated against the RUNNING peer count: a join admits one
  // more id, an earlier leave retires the highest one.
  std::vector<MembershipEvent> grown = {MembershipEvent::Join({120, 160}),
                                        MembershipEvent::Leave(3)};
  EXPECT_TRUE(ValidateMembershipEvents(grown, 3, 120, 160).ok());
  std::vector<MembershipEvent> shrunk = {MembershipEvent::Leave(2),
                                         MembershipEvent::Leave(2)};
  EXPECT_EQ(ValidateMembershipEvents(shrunk, 3, 120, 120).code(),
            StatusCode::kInvalidArgument);
}

TEST(ValidateMembershipEventsTest, CannotDepartTheLastPeer) {
  std::vector<MembershipEvent> events = {MembershipEvent::Leave(0)};
  Status status = ValidateMembershipEvents(events, /*num_peers=*/1, 40, 40);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(status.message(), "ApplyMembership: cannot depart the last peer");
  // A batch that drains a 3-peer network peer by peer trips the same
  // guard on its final event.
  std::vector<MembershipEvent> drain = {MembershipEvent::Leave(0),
                                        MembershipEvent::Leave(0),
                                        MembershipEvent::Leave(0)};
  EXPECT_EQ(ValidateMembershipEvents(drain, 3, 120, 120).code(),
            StatusCode::kFailedPrecondition);
}

// Engine-level contract, on every backend: an invalid batch is rejected
// with the validator's status and applies NOTHING — peer count, document
// count and rankings stay exactly as before, including batches whose
// first events would have been individually valid.
class MembershipRejectionTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(MembershipRejectionTest, RejectedBatchLeavesEngineUntouched) {
  corpus::SyntheticConfig ccfg;
  ccfg.seed = 99;
  ccfg.vocabulary_size = 1500;
  ccfg.num_topics = 8;
  ccfg.topic_width = 30;
  ccfg.mean_doc_length = 40.0;
  ccfg.topic_share = 0.7;
  corpus::DocumentStore store;
  corpus::SyntheticCorpus(ccfg).FillStore(240, &store);

  EngineConfig config;
  config.hdk.df_max = 6;
  config.hdk.very_frequent_threshold = 400;
  config.num_threads = 1;
  // Index only the first half: [120, ...) stays available for joins.
  auto engine = MakeEngine(GetParam(), config, store, SplitEvenly(120, 3));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const std::vector<TermId> probe = store.Tokens(5).size() >= 3
                                        ? std::vector<TermId>{
                                              store.Tokens(5)[0],
                                              store.Tokens(5)[1],
                                              store.Tokens(5)[2]}
                                        : std::vector<TermId>{1, 2, 3};
  const auto baseline = (*engine)->Search(probe, 10, /*origin=*/0);
  const size_t peers_before = (*engine)->num_peers();
  const uint64_t docs_before = (*engine)->num_documents();

  const std::vector<std::pair<std::vector<MembershipEvent>, StatusCode>>
      rejected = {
          {{}, StatusCode::kInvalidArgument},
          {{MembershipEvent::Leave(99)}, StatusCode::kInvalidArgument},
          {{MembershipEvent::Join({200, 240})}, StatusCode::kOutOfRange},
          // Valid join prefix + invalid departure: the whole batch must
          // be rejected up front, the join must NOT be applied.
          {{MembershipEvent::Join({120, 180}), MembershipEvent::Leave(57)},
           StatusCode::kInvalidArgument},
          // Valid departures that would drain the network.
          {{MembershipEvent::Leave(0), MembershipEvent::Leave(0),
            MembershipEvent::Leave(0)},
           StatusCode::kFailedPrecondition},
      };
  for (const auto& [events, code] : rejected) {
    Status status = (*engine)->ApplyMembership(store, events);
    EXPECT_EQ(status.code(), code) << status.ToString();
    EXPECT_EQ((*engine)->num_peers(), peers_before);
    EXPECT_EQ((*engine)->num_documents(), docs_before);
    auto response = (*engine)->Search(probe, 10, /*origin=*/0);
    ASSERT_EQ(response.results.size(), baseline.results.size());
    for (size_t i = 0; i < response.results.size(); ++i) {
      EXPECT_EQ(response.results[i].doc, baseline.results[i].doc);
      EXPECT_DOUBLE_EQ(response.results[i].score, baseline.results[i].score);
    }
  }

  // The same events in a well-formed batch still work afterwards — the
  // rejections left no poisoned state behind.
  std::vector<MembershipEvent> good = {MembershipEvent::Join({120, 180}),
                                       MembershipEvent::Leave(0)};
  Status status = (*engine)->ApplyMembership(store, good);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ((*engine)->num_peers(), peers_before);  // +1 join, -1 leave
}

INSTANTIATE_TEST_SUITE_P(AllBackends, MembershipRejectionTest,
                         ::testing::Values("hdk", "single-term", "bm25"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace hdk::engine
