#include "engine/overlap.h"

#include <gtest/gtest.h>

namespace hdk::engine {
namespace {

using index::ScoredDoc;

std::vector<ScoredDoc> Docs(std::initializer_list<DocId> ids) {
  std::vector<ScoredDoc> out;
  double score = 100.0;
  for (DocId d : ids) {
    out.push_back({d, score});
    score -= 1.0;
  }
  return out;
}

TEST(OverlapTest, IdenticalLists) {
  auto a = Docs({1, 2, 3, 4});
  EXPECT_EQ(TopKOverlap(a, a, 4), 1.0);
}

TEST(OverlapTest, DisjointLists) {
  EXPECT_EQ(TopKOverlap(Docs({1, 2}), Docs({3, 4}), 2), 0.0);
}

TEST(OverlapTest, OrderDoesNotMatterWithinTopK) {
  EXPECT_EQ(TopKOverlap(Docs({1, 2, 3}), Docs({3, 2, 1}), 3), 1.0);
}

TEST(OverlapTest, PartialOverlap) {
  EXPECT_NEAR(TopKOverlap(Docs({1, 2, 3, 4}), Docs({3, 4, 5, 6}), 4), 0.5,
              1e-12);
}

TEST(OverlapTest, OnlyTopKConsidered) {
  auto a = Docs({1, 2, 9, 9});
  auto b = Docs({3, 4, 1, 2});
  // Top-2 of a = {1,2}; top-2 of b = {3,4}: no overlap.
  EXPECT_EQ(TopKOverlap(a, b, 2), 0.0);
}

TEST(OverlapTest, ShortListsKeepDenominatorK) {
  // One result matching out of k=20 requested: 5%.
  EXPECT_NEAR(TopKOverlap(Docs({1}), Docs({1}), 20), 0.05, 1e-12);
}

TEST(OverlapTest, EmptyLists) {
  EXPECT_EQ(TopKOverlap({}, Docs({1}), 10), 0.0);
  EXPECT_EQ(TopKOverlap({}, {}, 10), 0.0);
}

TEST(OverlapTest, ZeroK) {
  EXPECT_EQ(TopKOverlap(Docs({1}), Docs({1}), 0), 0.0);
}

TEST(OverlapTest, MeanOverBatches) {
  std::vector<std::vector<ScoredDoc>> a{Docs({1, 2}), Docs({3, 4})};
  std::vector<std::vector<ScoredDoc>> b{Docs({1, 2}), Docs({5, 6})};
  EXPECT_NEAR(MeanTopKOverlap(a, b, 2), 0.5, 1e-12);
}

TEST(OverlapTest, MeanOfEmptyBatchIsZero) {
  EXPECT_EQ(MeanTopKOverlap({}, {}, 5), 0.0);
}

}  // namespace
}  // namespace hdk::engine
