// Tail-latency armor end to end (deadline budgets, hedged replica reads,
// per-peer circuit breakers, admission control — common/search_options.h,
// net/breaker.h, and the engine wiring):
//
//   * with every knob at its default the engine is BYTE-IDENTICAL to the
//     pre-overload engine: the golden build fingerprints still hold with
//     the knobs explicitly defaulted, and batches carry zero armor
//     counters;
//   * hedged reads against a slow replica holder cut simulated latency
//     without changing a single ranked result, deterministically at every
//     thread count on both overlays;
//   * a deadline budget turns unreachable-holder retry storms into a
//     partial, explicitly-degraded top-k with deadline_exceeded set — and
//     a deadline wide enough to never bind is byte-identical to no
//     deadline at all;
//   * circuit breakers trip on a dead holder and short-circuit its legs
//     straight to failover — fewer recorded messages, identical results,
//     zero degraded responses;
//   * the admission gate sheds the lowest-priority queries of an
//     over-bound batch, explicitly flagged, never silently dropped.
#include <cstdint>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/search_options.h"
#include "corpus/query_gen.h"
#include "corpus/stats.h"
#include "corpus/synthetic.h"
#include "engine/fingerprint.h"
#include "engine/hdk_engine.h"
#include "engine/partition.h"
#include "net/breaker.h"
#include "net/fault.h"
#include "net/traffic.h"

namespace hdk::engine {
namespace {

corpus::SyntheticCorpus OverloadCorpus() {
  corpus::SyntheticConfig cfg;
  cfg.seed = 4242;
  cfg.vocabulary_size = 3000;
  cfg.num_topics = 12;
  cfg.topic_width = 35;
  cfg.mean_doc_length = 50.0;
  cfg.topic_share = 0.7;
  return corpus::SyntheticCorpus(cfg);
}

HdkEngineConfig OverloadConfig(OverlayKind overlay, size_t num_threads) {
  HdkEngineConfig config;
  config.hdk.df_max = 8;
  config.hdk.very_frequent_threshold = 450;
  config.hdk.window = 8;
  config.hdk.s_max = 3;
  config.overlay = overlay;
  config.num_threads = num_threads;
  return config;
}

std::vector<corpus::Query> OverloadQueries(
    const corpus::DocumentStore& store, std::span<const DocRange> ranges,
    size_t count = 25) {
  corpus::CollectionStats stats(store, ranges);
  corpus::QueryGenConfig qcfg;
  qcfg.min_term_df = 3;
  return corpus::QueryGenerator(qcfg, store, stats).Generate(count);
}

void ExpectSameRankings(const BatchResponse& a, const BatchResponse& b) {
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (size_t i = 0; i < a.responses.size(); ++i) {
    const auto& ra = a.responses[i].results;
    const auto& rb = b.responses[i].results;
    ASSERT_EQ(ra.size(), rb.size()) << "query " << i;
    for (size_t j = 0; j < ra.size(); ++j) {
      EXPECT_EQ(ra[j].doc, rb[j].doc) << "query " << i;
      EXPECT_NEAR(ra[j].score, rb[j].score, 1e-12) << "query " << i;
    }
  }
}

// ---------------------------------------------------------------------
// Defaults: byte identity with the pre-overload engine.

// The golden build fingerprints of the flat-map-era lifecycle test
// (tests/common/flat_map_test.cc) — re-asserted here with every overload
// knob EXPLICITLY at its default, so a default that silently activates
// breaks this test, not just the lifecycle one.
struct GoldenBuild {
  uint64_t contents_fp;
  uint64_t traffic_fp;
};
constexpr GoldenBuild kPGridGoldenBuild = {9975991081778628371ULL,
                                           11150792075817568124ULL};
constexpr GoldenBuild kChordGoldenBuild = {9975991081778628371ULL,
                                           14647834575931769478ULL};

class OverloadDefaultsTest
    : public ::testing::TestWithParam<std::tuple<OverlayKind, size_t>> {};

INSTANTIATE_TEST_SUITE_P(
    OverlaysAndThreads, OverloadDefaultsTest,
    ::testing::Combine(::testing::Values(OverlayKind::kPGrid,
                                         OverlayKind::kChord),
                       ::testing::Values(size_t{1}, size_t{4})),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == OverlayKind::kPGrid
                             ? "pgrid"
                             : "chord") +
             "_t" + std::to_string(std::get<1>(info.param));
    });

TEST_P(OverloadDefaultsTest, ExplicitDefaultsMatchPreOverloadGoldens) {
  const auto [overlay, threads] = GetParam();
  // The golden fixtures' exact corpus and config.
  corpus::SyntheticConfig cfg;
  cfg.seed = 4242;
  cfg.vocabulary_size = 2500;
  cfg.num_topics = 10;
  cfg.topic_width = 30;
  cfg.mean_doc_length = 45.0;
  cfg.topic_share = 0.7;
  corpus::DocumentStore store;
  corpus::SyntheticCorpus(cfg).FillStore(320, &store);

  HdkEngineConfig config;
  config.hdk.df_max = 9;
  config.hdk.very_frequent_threshold = 450;
  config.hdk.window = 8;
  config.hdk.s_max = 3;
  config.overlay = overlay;
  config.num_threads = threads;
  // Every overload knob, spelled out at its default.
  config.breaker = net::BreakerConfig{};
  config.admission = AdmissionConfig{};
  config.maintenance = MaintenanceConfig{};

  auto built = HdkSearchEngine::Build(config, store, SplitEvenly(160, 4));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto engine = std::move(built).value();

  const GoldenBuild& golden = overlay == OverlayKind::kPGrid
                                  ? kPGridGoldenBuild
                                  : kChordGoldenBuild;
  EXPECT_EQ(FingerprintContents(engine->global_index().ExportContents()),
            golden.contents_fp);
  EXPECT_EQ(FingerprintTraffic(*engine->traffic()), golden.traffic_fp);
  EXPECT_FALSE(engine->circuit_breakers().enabled());
  EXPECT_EQ(engine->maintenance_sweeps(), 0u);
}

TEST_P(OverloadDefaultsTest, DefaultOptionsCarryZeroArmorCounters) {
  const auto [overlay, threads] = GetParam();
  corpus::DocumentStore store;
  OverloadCorpus().FillStore(240, &store);

  // Two identical builds (deterministic), one batch each: the engine's
  // origin rotation advances per batch, so same-engine comparisons would
  // compare different origins, not different options.
  const HdkEngineConfig config = OverloadConfig(overlay, threads);
  auto a = HdkSearchEngine::Build(config, store, SplitEvenly(240, 6));
  auto b = HdkSearchEngine::Build(config, store, SplitEvenly(240, 6));
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  const auto queries = OverloadQueries(store, (*a)->peer_ranges());
  // Explicit default options and the options-free overload are the same
  // call, response for response.
  BatchResponse plain = (*a)->SearchBatch(queries, 20);
  BatchResponse spelled = (*b)->SearchBatch(queries, 20, SearchOptions{});
  EXPECT_EQ(FingerprintBatch(plain), FingerprintBatch(spelled));

  EXPECT_EQ(plain.total.hedges_fired, 0u);
  EXPECT_EQ(plain.total.hedge_wins, 0u);
  EXPECT_EQ(plain.total.breaker_short_circuits, 0u);
  EXPECT_EQ(plain.total.deadline_exceeded, 0u);
  EXPECT_EQ(plain.total.shed, 0u);
  for (const SearchResponse& response : plain.responses) {
    EXPECT_FALSE(response.degraded);
    EXPECT_FALSE(response.shed);
  }
}

// ---------------------------------------------------------------------
// Hedged replica reads.

class HedgeTest : public ::testing::TestWithParam<OverlayKind> {};

INSTANTIATE_TEST_SUITE_P(BothOverlays, HedgeTest,
                         ::testing::Values(OverlayKind::kPGrid,
                                           OverlayKind::kChord),
                         [](const auto& info) {
                           return info.param == OverlayKind::kPGrid
                                      ? "pgrid"
                                      : "chord";
                         });

TEST_P(HedgeTest, HedgesCutSlowHolderLatencyWithIdenticalRankings) {
  corpus::DocumentStore store;
  OverloadCorpus().FillStore(240, &store);

  // Peer 3 is alive but a straggler: every leg addressed to it draws up
  // to 64 injected ticks. Its replica holders are fast.
  HdkEngineConfig config = OverloadConfig(GetParam(), 1);
  config.replication = 2;
  config.faults = *net::FaultPlan::Parse("seed=7,latency@3=64");
  auto built = HdkSearchEngine::Build(config, store, SplitEvenly(240, 6));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto engine = std::move(built).value();

  const auto queries = OverloadQueries(store, engine->peer_ranges());

  BatchResponse unhedged = engine->SearchBatch(queries, 20);
  SearchOptions hedged_options;
  hedged_options.hedge_delay_ticks = 4;
  BatchResponse hedged = engine->SearchBatch(queries, 20, hedged_options);

  // Identical rankings, zero degraded — hedging is pure latency armor.
  ExpectSameRankings(unhedged, hedged);
  for (const SearchResponse& response : hedged.responses) {
    EXPECT_FALSE(response.degraded);
  }
  // The straggler forced hedges, replicas won races, and the winners'
  // clock beats waiting out the slow legs.
  EXPECT_GT(hedged.total.hedges_fired, 0u);
  EXPECT_GT(hedged.total.hedge_wins, 0u);
  EXPECT_LT(hedged.total.latency_ticks, unhedged.total.latency_ticks);
}

TEST_P(HedgeTest, HedgedBatchesAreThreadCountInvariant) {
  corpus::DocumentStore store;
  OverloadCorpus().FillStore(240, &store);

  SearchOptions options;
  options.hedge_delay_ticks = 4;
  options.deadline_ticks = 512;

  uint64_t batch_fp[2] = {0, 0};
  net::TrafficCounters by_kind[2][net::kNumMessageKinds];
  for (size_t ti = 0; ti < 2; ++ti) {
    const size_t threads = ti == 0 ? 1 : 4;
    SCOPED_TRACE(std::to_string(threads) + " threads");
    HdkEngineConfig config = OverloadConfig(GetParam(), threads);
    config.replication = 2;
    config.faults = *net::FaultPlan::Parse("seed=7,loss=0.02,latency@3=64");
    auto built = HdkSearchEngine::Build(config, store, SplitEvenly(240, 6));
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    auto engine = std::move(built).value();

    const auto queries = OverloadQueries(store, engine->peer_ranges());
    BatchResponse batch = engine->SearchBatch(queries, 20, options);
    EXPECT_GT(batch.total.hedges_fired, 0u);
    batch_fp[ti] = HashCombine(FingerprintBatch(batch),
                               batch.total.hedges_fired +
                                   batch.total.hedge_wins * 1000003ULL);
    for (size_t k = 0; k < net::kNumMessageKinds; ++k) {
      by_kind[ti][k] =
          engine->traffic()->ByKind(static_cast<net::MessageKind>(k));
    }
  }
  // Every hedge decision is a pure hash of the message identity: the
  // batch (results, costs, armor counters) and the per-kind traffic are
  // identical at every thread count.
  EXPECT_EQ(batch_fp[0], batch_fp[1]);
  for (size_t k = 0; k < net::kNumMessageKinds; ++k) {
    EXPECT_EQ(by_kind[0][k], by_kind[1][k])
        << net::MessageKindName(static_cast<net::MessageKind>(k));
  }
}

// ---------------------------------------------------------------------
// Deadline budgets.

TEST(DeadlineTest, BudgetDegradesInsteadOfRetryingForever) {
  corpus::DocumentStore store;
  OverloadCorpus().FillStore(240, &store);

  // Single-homed keys, one dead peer: without a deadline each touched
  // key burns the full retry/backoff budget against the corpse. One
  // fresh (identical) build per batch keeps the origin rotation aligned
  // across the three compared runs.
  HdkEngineConfig config = OverloadConfig(OverlayKind::kPGrid, 1);
  config.faults = *net::FaultPlan::Parse("seed=7,latency=6,kill=2@0");
  auto fresh_engine = [&] {
    auto built = HdkSearchEngine::Build(config, store, SplitEvenly(240, 6));
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    return std::move(built).value();
  };

  auto engine = fresh_engine();
  const auto queries = OverloadQueries(store, engine->peer_ranges());
  BatchResponse unlimited = engine->SearchBatch(queries, 20);
  EXPECT_EQ(unlimited.total.deadline_exceeded, 0u);

  SearchOptions tight;
  tight.deadline_ticks = 8;
  BatchResponse bounded = fresh_engine()->SearchBatch(queries, 20, tight);

  // Some queries ran out of budget: each one is explicitly degraded,
  // flagged deadline_exceeded, and still returns a (partial) top-k.
  EXPECT_GT(bounded.total.deadline_exceeded, 0u);
  uint64_t flagged = 0;
  for (const SearchResponse& response : bounded.responses) {
    if (response.cost.deadline_exceeded > 0) {
      EXPECT_TRUE(response.degraded);
      ++flagged;
    }
  }
  EXPECT_EQ(flagged, bounded.total.deadline_exceeded);
  // The budget bounds simulated waiting: strictly less time than the
  // unbounded retry storm.
  EXPECT_LT(bounded.total.latency_ticks, unlimited.total.latency_ticks);

  // A deadline that never binds is byte-identical to no deadline.
  SearchOptions loose;
  loose.deadline_ticks = 1u << 30;
  BatchResponse wide = fresh_engine()->SearchBatch(queries, 20, loose);
  EXPECT_EQ(FingerprintBatch(wide), FingerprintBatch(unlimited));
  EXPECT_EQ(wide.total.deadline_exceeded, 0u);
}

TEST(DeadlineTest, BoundedBatchesAreThreadCountInvariant) {
  corpus::DocumentStore store;
  OverloadCorpus().FillStore(240, &store);

  SearchOptions tight;
  tight.deadline_ticks = 8;

  uint64_t fp[2] = {0, 0};
  uint64_t exceeded[2] = {0, 0};
  for (size_t ti = 0; ti < 2; ++ti) {
    const size_t threads = ti == 0 ? 1 : 4;
    HdkEngineConfig config = OverloadConfig(OverlayKind::kChord, threads);
    config.faults = *net::FaultPlan::Parse("seed=7,latency=6,kill=2@0");
    auto built = HdkSearchEngine::Build(config, store, SplitEvenly(240, 6));
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    auto engine = std::move(built).value();
    const auto queries = OverloadQueries(store, engine->peer_ranges());
    BatchResponse batch = engine->SearchBatch(queries, 20, tight);
    fp[ti] = FingerprintBatch(batch);
    exceeded[ti] = batch.total.deadline_exceeded;
  }
  // The budget is per query and charged by pure-hash latency draws: the
  // same queries exceed it at every thread count.
  EXPECT_EQ(fp[0], fp[1]);
  EXPECT_GT(exceeded[0], 0u);
  EXPECT_EQ(exceeded[0], exceeded[1]);
}

// ---------------------------------------------------------------------
// Circuit breakers.

TEST(BreakerEngineTest, OpenBreakerShortCircuitsDeadHolderLegs) {
  corpus::DocumentStore store;
  OverloadCorpus().FillStore(240, &store);

  HdkEngineConfig config = OverloadConfig(OverlayKind::kPGrid, 1);
  config.replication = 2;
  auto baseline_built =
      HdkSearchEngine::Build(config, store, SplitEvenly(240, 6));
  ASSERT_TRUE(baseline_built.ok());
  auto baseline = std::move(baseline_built).value();

  HdkEngineConfig armored = config;
  armored.breaker.enabled = true;
  armored.breaker.failure_threshold = 2;
  armored.breaker.open_cooldown = 64;
  auto armored_built =
      HdkSearchEngine::Build(armored, store, SplitEvenly(240, 6));
  ASSERT_TRUE(armored_built.ok());
  auto engine = std::move(armored_built).value();

  // Identical builds; an unannounced hard failure of peer 3 in both.
  baseline->fault_injector().KillPeer(3);
  engine->fault_injector().KillPeer(3);

  const auto queries = OverloadQueries(store, engine->peer_ranges(), 40);
  const uint64_t baseline_before = baseline->traffic()->total().messages;
  const uint64_t armored_before = engine->traffic()->total().messages;
  uint64_t short_circuits = 0;
  // Serial query stream (breakers are cross-query state; see breaker.h).
  for (const auto& q : queries) {
    SearchResponse without = baseline->Search(q.terms, 20, /*origin=*/0);
    SearchResponse with = engine->Search(q.terms, 20, /*origin=*/0);
    EXPECT_FALSE(with.degraded);
    ASSERT_EQ(without.results.size(), with.results.size());
    for (size_t j = 0; j < with.results.size(); ++j) {
      EXPECT_EQ(without.results[j].doc, with.results[j].doc);
    }
    short_circuits += with.cost.breaker_short_circuits;
  }

  // Two failed round trips tripped the dead peer's breaker; every later
  // leg to it was skipped without a message.
  EXPECT_EQ(engine->circuit_breakers().state(3),
            net::CircuitBreakerBank::State::kOpen);
  EXPECT_GT(short_circuits, 0u);
  EXPECT_EQ(engine->circuit_breakers().short_circuits(), short_circuits);
  EXPECT_LT(engine->traffic()->total().messages - armored_before,
            baseline->traffic()->total().messages - baseline_before);
}

// ---------------------------------------------------------------------
// Admission control.

TEST(AdmissionTest, GateShedsLowestPriorityQueriesExplicitly) {
  corpus::DocumentStore store;
  OverloadCorpus().FillStore(240, &store);

  HdkEngineConfig config = OverloadConfig(OverlayKind::kPGrid, 1);
  auto open_built = HdkSearchEngine::Build(config, store, SplitEvenly(240, 6));
  ASSERT_TRUE(open_built.ok());
  auto open = std::move(open_built).value();

  HdkEngineConfig gated_config = config;
  gated_config.admission.max_batch_queries = 6;
  auto gated_built =
      HdkSearchEngine::Build(gated_config, store, SplitEvenly(240, 6));
  ASSERT_TRUE(gated_built.ok());
  auto gated = std::move(gated_built).value();

  std::vector<corpus::Query> queries =
      OverloadQueries(store, gated->peer_ranges(), 10);
  // Two background stragglers, one interactive, the rest normal.
  for (auto& q : queries) q.priority = QueryPriority::kNormal;
  queries[2].priority = QueryPriority::kBackground;
  queries[7].priority = QueryPriority::kBackground;
  queries[4].priority = QueryPriority::kInteractive;

  BatchResponse reference = open->SearchBatch(queries, 20);
  BatchResponse batch = gated->SearchBatch(queries, 20);

  // 10 queries, 6 admitted: the two background queries shed first, then
  // normal-priority queries from the back of the batch (9, then 8).
  const std::vector<size_t> expect_shed = {2, 7, 8, 9};
  uint64_t shed = 0;
  for (size_t i = 0; i < batch.responses.size(); ++i) {
    const SearchResponse& response = batch.responses[i];
    const bool should_shed =
        std::find(expect_shed.begin(), expect_shed.end(), i) !=
        expect_shed.end();
    EXPECT_EQ(response.shed, should_shed) << "query " << i;
    if (response.shed) {
      ++shed;
      // Shed is explicit and free: no results, no network work, flagged.
      EXPECT_TRUE(response.results.empty());
      EXPECT_EQ(response.cost.shed, 1u);
      EXPECT_EQ(response.cost.messages, 0u);
      EXPECT_FALSE(response.degraded);
    } else {
      // Admitted queries rank exactly as the ungated engine ranks them
      // (results are origin-independent).
      const auto& expected = reference.responses[i].results;
      ASSERT_EQ(response.results.size(), expected.size()) << "query " << i;
      for (size_t j = 0; j < expected.size(); ++j) {
        EXPECT_EQ(response.results[j].doc, expected[j].doc);
      }
    }
  }
  EXPECT_EQ(shed, expect_shed.size());
  EXPECT_EQ(batch.total.shed, expect_shed.size());

  // Under the bound nothing sheds, whatever the priorities say.
  std::vector<corpus::Query> small(queries.begin(), queries.begin() + 6);
  BatchResponse under = gated->SearchBatch(small, 20);
  EXPECT_EQ(under.total.shed, 0u);
}

TEST(AdmissionTest, ShedDecisionsAreThreadCountInvariant) {
  corpus::DocumentStore store;
  OverloadCorpus().FillStore(240, &store);

  uint64_t fp[2] = {0, 0};
  for (size_t ti = 0; ti < 2; ++ti) {
    const size_t threads = ti == 0 ? 1 : 4;
    HdkEngineConfig config = OverloadConfig(OverlayKind::kChord, threads);
    config.admission.max_batch_queries = 7;
    auto built = HdkSearchEngine::Build(config, store, SplitEvenly(240, 6));
    ASSERT_TRUE(built.ok());
    auto engine = std::move(built).value();
    std::vector<corpus::Query> queries =
        OverloadQueries(store, engine->peer_ranges(), 12);
    queries[1].priority = QueryPriority::kBackground;
    queries[10].priority = QueryPriority::kInteractive;
    BatchResponse batch = engine->SearchBatch(queries, 20);
    EXPECT_EQ(batch.total.shed, 5u);
    uint64_t h = FingerprintBatch(batch);
    for (const SearchResponse& response : batch.responses) {
      h = HashCombine(h, response.shed ? 1 : 0);
    }
    fp[ti] = h;
  }
  // Shedding happens before the batch fans out, so the victim set — and
  // everything downstream — is identical at every thread count.
  EXPECT_EQ(fp[0], fp[1]);
}

}  // namespace
}  // namespace hdk::engine
