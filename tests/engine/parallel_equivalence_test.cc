// The determinism contract of the parallel execution layer: for every
// EngineKind, an engine built (and grown) with a thread pool is
// posting-for-posting identical to one built serially, and a parallel
// SearchBatch returns exactly the responses of a serial loop over
// Search(). Plus a stress test exercising concurrent batches over one
// shared engine (run under the CI ThreadSanitizer job).
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/query_gen.h"
#include "corpus/stats.h"
#include "corpus/synthetic.h"
#include "engine/engine_factory.h"
#include "engine/hdk_engine.h"
#include "engine/partition.h"
#include "engine/search_engine.h"
#include "hdk/indexer.h"

namespace hdk::engine {
namespace {

/// Thread count of the parallel side; CI overrides via HDKP2P_TEST_THREADS
/// (the "pass the thread env through ctest" knob).
size_t TestThreads() {
  if (const char* env = std::getenv("HDKP2P_TEST_THREADS")) {
    const size_t n = std::strtoul(env, nullptr, 10);
    if (n >= 2) return n;
  }
  return 4;
}

corpus::SyntheticCorpus TestCorpus() {
  corpus::SyntheticConfig cfg;
  cfg.seed = 777;
  cfg.vocabulary_size = 3000;
  cfg.num_topics = 12;
  cfg.topic_width = 35;
  cfg.mean_doc_length = 50.0;
  cfg.topic_share = 0.7;
  return corpus::SyntheticCorpus(cfg);
}

EngineConfig SerialConfig() {
  EngineConfig config;
  config.hdk.df_max = 10;
  config.hdk.very_frequent_threshold = 600;
  config.hdk.window = 8;
  config.hdk.s_max = 3;
  config.num_threads = 1;
  return config;
}

EngineConfig ParallelConfig() {
  EngineConfig config = SerialConfig();
  config.num_threads = TestThreads();
  return config;
}

void ExpectSameResponse(const SearchResponse& a, const SearchResponse& b) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].doc, b.results[i].doc);
    EXPECT_EQ(a.results[i].score, b.results[i].score);  // bit-identical
  }
  EXPECT_EQ(a.cost, b.cost);
}

class ParallelEquivalenceTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  void SetUp() override {
    corpus_ = std::make_unique<corpus::SyntheticCorpus>(TestCorpus());
    corpus_->FillStore(240, &store_);
    corpus::CollectionStats stats(store_);
    corpus::QueryGenConfig qcfg;
    qcfg.min_term_df = 3;
    corpus::QueryGenerator gen(qcfg, store_, stats);
    queries_ = gen.Generate(40);
    ASSERT_GT(queries_.size(), 10u);
  }

  std::unique_ptr<SearchEngine> Make(const EngineConfig& config,
                                     uint64_t docs, uint32_t peers) {
    auto built =
        MakeEngine(GetParam(), config, store_, SplitEvenly(docs, peers));
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    return built.ok() ? std::move(built).value() : nullptr;
  }

  std::unique_ptr<corpus::SyntheticCorpus> corpus_;
  corpus::DocumentStore store_;
  std::vector<corpus::Query> queries_;
};

TEST_P(ParallelEquivalenceTest, BuildMatchesSerial) {
  auto serial = Make(SerialConfig(), 240, 4);
  auto parallel = Make(ParallelConfig(), 240, 4);
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(parallel, nullptr);

  EXPECT_EQ(serial->num_documents(), parallel->num_documents());
  EXPECT_EQ(serial->StoredPostingsPerPeer(),
            parallel->StoredPostingsPerPeer());
  EXPECT_EQ(serial->InsertedPostingsPerPeer(),
            parallel->InsertedPostingsPerPeer());
  if (serial->traffic() != nullptr) {
    EXPECT_EQ(serial->traffic()->total(), parallel->traffic()->total());
  }
  for (const auto& q : queries_) {
    ExpectSameResponse(serial->Search(q.terms, 20, /*origin=*/0),
                       parallel->Search(q.terms, 20, /*origin=*/0));
  }
}

TEST_P(ParallelEquivalenceTest, GrowMatchesSerial) {
  auto serial = Make(SerialConfig(), 120, 2);
  auto parallel = Make(ParallelConfig(), 120, 2);
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(parallel, nullptr);

  corpus_->FillStore(240, &store_);
  ASSERT_TRUE(serial->AddPeers(store_, JoinRanges(120, 2, 60)).ok());
  ASSERT_TRUE(parallel->AddPeers(store_, JoinRanges(120, 2, 60)).ok());

  EXPECT_EQ(serial->num_documents(), parallel->num_documents());
  EXPECT_EQ(serial->StoredPostingsPerPeer(),
            parallel->StoredPostingsPerPeer());
  EXPECT_EQ(serial->InsertedPostingsPerPeer(),
            parallel->InsertedPostingsPerPeer());
  for (const auto& q : queries_) {
    ExpectSameResponse(serial->Search(q.terms, 20, /*origin=*/1),
                       parallel->Search(q.terms, 20, /*origin=*/1));
  }
}

TEST_P(ParallelEquivalenceTest, SearchBatchMatchesSerial) {
  auto serial = Make(SerialConfig(), 240, 4);
  auto parallel = Make(ParallelConfig(), 240, 4);
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(parallel, nullptr);

  BatchResponse a = serial->SearchBatch(queries_, 20);
  BatchResponse b = parallel->SearchBatch(queries_, 20);
  ASSERT_EQ(a.responses.size(), b.responses.size());
  for (size_t i = 0; i < a.responses.size(); ++i) {
    ExpectSameResponse(a.responses[i], b.responses[i]);
  }
  EXPECT_EQ(a.total, b.total);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngineKinds, ParallelEquivalenceTest,
    ::testing::ValuesIn(kAllEngineKinds),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      return std::string(EngineKindName(info.param)) == "single-term"
                 ? "single_term"
                 : std::string(EngineKindName(info.param));
    });

TEST(HdkParallelBuildTest, GlobalIndexIsPostingForPostingIdentical) {
  // Beyond the interface-level metrics: the HDK global index itself must
  // come out bit-identical under parallel construction.
  corpus::SyntheticCorpus corpus = TestCorpus();
  corpus::DocumentStore store;
  corpus.FillStore(240, &store);

  HdkEngineConfig serial_cfg;
  serial_cfg.hdk = SerialConfig().hdk;
  serial_cfg.num_threads = 1;
  HdkEngineConfig parallel_cfg = serial_cfg;
  parallel_cfg.num_threads = TestThreads();

  auto serial = HdkSearchEngine::Build(serial_cfg, store,
                                       SplitEvenly(240, 4));
  auto parallel = HdkSearchEngine::Build(parallel_cfg, store,
                                         SplitEvenly(240, 4));
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());

  const hdk::HdkIndexContents a = (*serial)->global_index().ExportContents();
  const hdk::HdkIndexContents b =
      (*parallel)->global_index().ExportContents();
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, entry] : a.entries()) {
    const hdk::KeyEntry* other = b.Find(key);
    ASSERT_NE(other, nullptr) << "missing key " << key.ToString();
    EXPECT_EQ(entry.global_df, other->global_df) << key.ToString();
    EXPECT_EQ(entry.is_hdk, other->is_hdk) << key.ToString();
    EXPECT_EQ(entry.postings, other->postings) << key.ToString();
  }
  // Identical protocol traffic, message for message.
  for (size_t k = 0; k < net::kNumMessageKinds; ++k) {
    const auto kind = static_cast<net::MessageKind>(k);
    EXPECT_EQ((*serial)->traffic()->ByKind(kind),
              (*parallel)->traffic()->ByKind(kind));
  }
}

TEST(ParallelStressTest, ConcurrentBatchesOverSharedEngine) {
  // Several external threads fire batches at ONE shared engine while the
  // engine's own pool fans each batch out. Origins interleave
  // nondeterministically, but ranking and posting traffic are
  // origin-independent, so every batch must reproduce the reference
  // results exactly — and the sharded traffic recorder must account for
  // every message (checked against the per-batch tallies).
  corpus::SyntheticCorpus corpus = TestCorpus();
  corpus::DocumentStore store;
  corpus.FillStore(240, &store);
  corpus::CollectionStats stats(store);
  corpus::QueryGenConfig qcfg;
  qcfg.min_term_df = 3;
  auto queries = corpus::QueryGenerator(qcfg, store, stats).Generate(30);
  ASSERT_GT(queries.size(), 10u);

  auto reference = MakeEngine(EngineKind::kHdk, SerialConfig(), store,
                              SplitEvenly(240, 4));
  ASSERT_TRUE(reference.ok());
  const BatchResponse expected = (*reference)->SearchBatch(queries, 20);

  auto shared = MakeEngine(EngineKind::kHdk, ParallelConfig(), store,
                           SplitEvenly(240, 4));
  ASSERT_TRUE(shared.ok());
  const net::TrafficCounters before = (*shared)->traffic()->Snapshot();

  constexpr size_t kCallers = 4;
  std::vector<BatchResponse> batches(kCallers);
  {
    std::vector<std::thread> callers;
    for (size_t c = 0; c < kCallers; ++c) {
      callers.emplace_back([&, c] {
        batches[c] = (*shared)->SearchBatch(queries, 20);
      });
    }
    for (std::thread& t : callers) t.join();
  }

  uint64_t messages = 0;
  uint64_t hops = 0;
  for (const BatchResponse& batch : batches) {
    ASSERT_EQ(batch.responses.size(), expected.responses.size());
    for (size_t i = 0; i < batch.responses.size(); ++i) {
      const SearchResponse& got = batch.responses[i];
      const SearchResponse& want = expected.responses[i];
      ASSERT_EQ(got.results.size(), want.results.size());
      for (size_t r = 0; r < got.results.size(); ++r) {
        EXPECT_EQ(got.results[r].doc, want.results[r].doc);
        EXPECT_EQ(got.results[r].score, want.results[r].score);
      }
      EXPECT_EQ(got.cost.postings_fetched, want.cost.postings_fetched);
      EXPECT_EQ(got.cost.keys_fetched, want.cost.keys_fetched);
      EXPECT_EQ(got.cost.probes, want.cost.probes);
      EXPECT_EQ(got.cost.pruned, want.cost.pruned);
    }
    EXPECT_EQ(batch.total.postings_fetched, expected.total.postings_fetched);
    messages += batch.total.messages;
    hops += batch.total.hops;
  }

  // No message lost or double-counted across the concurrent shards.
  const net::TrafficCounters after = (*shared)->traffic()->Snapshot();
  EXPECT_EQ(after.messages - before.messages, messages);
  EXPECT_EQ(after.hops - before.hops, hops);
}

}  // namespace
}  // namespace hdk::engine
