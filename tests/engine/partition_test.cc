#include "engine/partition.h"

#include <gtest/gtest.h>

namespace hdk::engine {
namespace {

TEST(SplitEvenlyTest, BalancedRanges) {
  auto ranges = SplitEvenly(10, 3);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], (DocRange{0, 4}));
  EXPECT_EQ(ranges[1], (DocRange{4, 7}));
  EXPECT_EQ(ranges[2], (DocRange{7, 10}));
}

TEST(SplitEvenlyTest, ExactDivision) {
  auto ranges = SplitEvenly(8, 4);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ranges[i].second - ranges[i].first, 2u);
  }
}

TEST(SplitEvenlyTest, CoversEveryDocumentOnce) {
  auto ranges = SplitEvenly(17, 5);
  DocId next = 0;
  for (const auto& [first, last] : ranges) {
    EXPECT_EQ(first, next);
    next = last;
  }
  EXPECT_EQ(next, 17u);
}

TEST(SplitEvenlyTest, ZeroPeersYieldsNothing) {
  EXPECT_TRUE(SplitEvenly(10, 0).empty());
}

TEST(JoinRangesTest, ContinuesContiguously) {
  auto ranges = JoinRanges(100, 3, 25);
  ASSERT_EQ(ranges.size(), 3u);
  EXPECT_EQ(ranges[0], (DocRange{100, 125}));
  EXPECT_EQ(ranges[1], (DocRange{125, 150}));
  EXPECT_EQ(ranges[2], (DocRange{150, 175}));
}

TEST(JoinRangesTest, MatchesSplitEvenlyContinuation) {
  // Joining k peers with d docs each after n peers built over n*d docs
  // reproduces exactly SplitEvenly((n+k)*d, n+k) — the incremental sweep
  // and the from-scratch sweep partition identically.
  const uint32_t n = 4, k = 3, d = 50;
  auto full = SplitEvenly(static_cast<uint64_t>(n + k) * d, n + k);
  auto join = JoinRanges(n * d, k, d);
  for (uint32_t i = 0; i < k; ++i) {
    EXPECT_EQ(join[i], full[n + i]);
  }
}

}  // namespace
}  // namespace hdk::engine
