// Conformance suite for the unified SearchEngine interface: every
// EngineKind is driven through the same tiny corpus and query workload via
// MakeEngine + the abstract interface, and must satisfy the same contract —
// ranked deterministic results, coherent cost counters, batch == sum of
// singles, and the membership lifecycle (join waves via the AddPeers
// sugar, mixed join/leave batches via ApplyMembership).
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/query_gen.h"
#include "corpus/stats.h"
#include "corpus/synthetic.h"
#include "engine/engine_factory.h"
#include "engine/membership.h"
#include "engine/overlap.h"
#include "engine/partition.h"
#include "engine/search_engine.h"
#include "index/topk.h"

namespace hdk::engine {
namespace {

corpus::SyntheticCorpus TestCorpus() {
  corpus::SyntheticConfig cfg;
  cfg.seed = 4242;
  cfg.vocabulary_size = 3000;
  cfg.num_topics = 12;
  cfg.topic_width = 35;
  cfg.mean_doc_length = 50.0;
  cfg.topic_share = 0.7;
  return corpus::SyntheticCorpus(cfg);
}

EngineConfig TestConfig() {
  EngineConfig config;
  config.hdk.df_max = 10;
  config.hdk.very_frequent_threshold = 600;
  config.hdk.window = 8;
  config.hdk.s_max = 3;
  return config;
}

class ConformanceTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  void SetUp() override {
    TestCorpus().FillStore(160, &store_);
    corpus::CollectionStats stats(store_);
    corpus::QueryGenConfig qcfg;
    qcfg.min_term_df = 3;
    corpus::QueryGenerator gen(qcfg, store_, stats);
    queries_ = gen.Generate(25);
    ASSERT_GT(queries_.size(), 5u);
  }

  std::unique_ptr<SearchEngine> Make(uint64_t docs = 160,
                                     uint32_t peers = 4) {
    auto built = MakeEngine(GetParam(), TestConfig(), store_,
                            SplitEvenly(docs, peers));
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    return built.ok() ? std::move(built).value() : nullptr;
  }

  corpus::DocumentStore store_;
  std::vector<corpus::Query> queries_;
};

TEST_P(ConformanceTest, FactorySelectsByNameAndKind) {
  auto engine = Make();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->name(), EngineKindName(GetParam()));
  EXPECT_EQ(ParseEngineKind(engine->name()), GetParam());
  EXPECT_EQ(engine->num_documents(), 160u);
}

TEST_P(ConformanceTest, RankedDeterministicResults) {
  auto engine = Make();
  ASSERT_NE(engine, nullptr);
  for (const auto& q : queries_) {
    SearchResponse a = engine->Search(q.terms, 20);
    EXPECT_LE(a.results.size(), 20u);
    for (size_t i = 1; i < a.results.size(); ++i) {
      EXPECT_TRUE(!index::BetterResult(a.results[i], a.results[i - 1]))
          << "results must be ranked best-first";
    }
    // Re-running the same query yields the same ranking regardless of the
    // engine-chosen origin.
    SearchResponse b = engine->Search(q.terms, 20);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (size_t i = 0; i < a.results.size(); ++i) {
      EXPECT_EQ(a.results[i].doc, b.results[i].doc);
    }
  }
}

TEST_P(ConformanceTest, CostCountersAreCoherentAndMonotone) {
  auto engine = Make();
  ASSERT_NE(engine, nullptr);
  QueryCost running;
  uint64_t last_traffic_messages = 0;
  for (const auto& q : queries_) {
    SearchResponse r = engine->Search(q.terms, 20);
    // Per-query counters are internally coherent: a distributed engine
    // can only fetch keys it probed for.
    if (GetParam() != EngineKind::kCentralized) {
      EXPECT_LE(r.cost.keys_fetched, r.cost.probes);
    } else {
      EXPECT_EQ(r.cost.probes, 0u);
    }
    running += r.cost;
    // The running aggregate only grows (monotone counters).
    EXPECT_GE(running.postings_fetched, r.cost.postings_fetched);
    // Distributed engines expose a recorder whose totals grow with every
    // query; the centralized reference has no network.
    const net::TrafficRecorder* traffic = engine->traffic();
    if (GetParam() == EngineKind::kCentralized) {
      EXPECT_EQ(traffic, nullptr);
      EXPECT_EQ(r.cost.messages, 0u);
      EXPECT_EQ(r.cost.hops, 0u);
    } else {
      ASSERT_NE(traffic, nullptr);
      EXPECT_GE(traffic->total().messages, last_traffic_messages);
      EXPECT_GT(r.cost.messages, 0u);
      last_traffic_messages = traffic->total().messages;
    }
  }
}

TEST_P(ConformanceTest, BatchEqualsSumOfSingles) {
  auto batch_engine = Make();
  auto single_engine = Make();
  ASSERT_NE(batch_engine, nullptr);
  ASSERT_NE(single_engine, nullptr);

  BatchResponse batch = batch_engine->SearchBatch(queries_, 20);
  ASSERT_EQ(batch.responses.size(), queries_.size());

  QueryCost summed;
  for (size_t i = 0; i < queries_.size(); ++i) {
    SearchResponse single = single_engine->Search(queries_[i].terms, 20);
    summed += single.cost;
    ASSERT_EQ(batch.responses[i].results.size(), single.results.size());
    for (size_t j = 0; j < single.results.size(); ++j) {
      EXPECT_EQ(batch.responses[i].results[j].doc, single.results[j].doc);
    }
  }
  EXPECT_EQ(batch.total.postings_fetched, summed.postings_fetched);
  EXPECT_EQ(batch.total.keys_fetched, summed.keys_fetched);
  EXPECT_EQ(batch.total.messages, summed.messages);
}

TEST_P(ConformanceTest, ApplyMembershipJoinsAndDeparts) {
  auto engine = Make(/*docs=*/120, /*peers=*/3);
  ASSERT_NE(engine, nullptr);

  // One batch: a join wave plus a departure of a founding peer.
  std::vector<MembershipEvent> events = JoinWave(120, 1, 40);
  events.push_back(MembershipEvent::Leave(0));
  ASSERT_TRUE(engine->ApplyMembership(store_, events).ok());
  EXPECT_EQ(engine->num_documents(), 120u);  // +40 joined, -40 departed
  if (GetParam() != EngineKind::kCentralized) {
    EXPECT_EQ(engine->num_peers(), 3u);
  }

  // Queries keep working over the churned network, batch included.
  BatchResponse batch = engine->SearchBatch(queries_, 10);
  ASSERT_EQ(batch.responses.size(), queries_.size());
  for (const auto& response : batch.responses) {
    EXPECT_LE(response.results.size(), 10u);
  }

  // Departing an unknown peer is rejected and changes nothing.
  EXPECT_FALSE(
      engine->ApplyMembership(store_, {MembershipEvent::Leave(42)}).ok());
  EXPECT_EQ(engine->num_documents(), 120u);
}

TEST_P(ConformanceTest, AddPeersGrowsTheEngine) {
  auto engine = Make(/*docs=*/120, /*peers=*/3);
  ASSERT_NE(engine, nullptr);
  const size_t peers_before = engine->num_peers();
  ASSERT_EQ(engine->num_documents(), 120u);

  ASSERT_TRUE(engine->AddPeers(store_, JoinRanges(120, 1, 40)).ok());
  EXPECT_EQ(engine->num_documents(), 160u);
  if (GetParam() != EngineKind::kCentralized) {
    EXPECT_EQ(engine->num_peers(), peers_before + 1);
  }

  // Non-contiguous or foreign-store joins are rejected.
  EXPECT_FALSE(engine->AddPeers(store_, JoinRanges(500, 1, 40)).ok());
  corpus::DocumentStore other;
  TestCorpus().FillStore(160, &other);
  EXPECT_FALSE(engine->AddPeers(other, JoinRanges(160, 1, 0)).ok());

  for (const auto& q : queries_) {
    EXPECT_LE(engine->Search(q.terms, 10).results.size(), 10u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngineKinds, ConformanceTest,
                         ::testing::ValuesIn(kAllEngineKinds),
                         [](const auto& info) {
                           std::string name(EngineKindName(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// Cross-engine agreement: the distributed single-term baseline IS
// centralized BM25 behind a network (same index contents, same scorer) —
// their rankings must agree document-for-document. The HDK engine trades
// truncated NDK postings for bounded traffic; its top-20 must still
// overlap substantially (paper Figure 7).
TEST(EngineAgreementTest, SingleTermMatchesCentralizedExactly) {
  corpus::DocumentStore store;
  TestCorpus().FillStore(160, &store);
  corpus::CollectionStats stats(store);
  corpus::QueryGenConfig qcfg;
  qcfg.min_term_df = 3;
  auto queries = corpus::QueryGenerator(qcfg, store, stats).Generate(25);

  auto st = MakeEngine(EngineKind::kSingleTerm, TestConfig(), store,
                       SplitEvenly(160, 4));
  auto central = MakeEngine(EngineKind::kCentralized, TestConfig(), store,
                            SplitEvenly(160, 4));
  ASSERT_TRUE(st.ok());
  ASSERT_TRUE(central.ok());

  for (const auto& q : queries) {
    auto a = (*st)->Search(q.terms, 20);
    auto b = (*central)->Search(q.terms, 20);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (size_t i = 0; i < a.results.size(); ++i) {
      EXPECT_EQ(a.results[i].doc, b.results[i].doc);
      EXPECT_NEAR(a.results[i].score, b.results[i].score, 1e-9);
    }
    // Identical retrieval-cost semantics too: both report the full
    // posting volume of the query terms.
    EXPECT_EQ(a.cost.postings_fetched, b.cost.postings_fetched);
  }
}

TEST(EngineAgreementTest, HdkOverlapsSubstantially) {
  corpus::DocumentStore store;
  TestCorpus().FillStore(160, &store);
  corpus::CollectionStats stats(store);
  corpus::QueryGenConfig qcfg;
  qcfg.min_term_df = 3;
  auto queries = corpus::QueryGenerator(qcfg, store, stats).Generate(25);

  auto hdk = MakeEngine(EngineKind::kHdk, TestConfig(), store,
                        SplitEvenly(160, 4));
  auto central = MakeEngine(EngineKind::kCentralized, TestConfig(), store,
                            SplitEvenly(160, 4));
  ASSERT_TRUE(hdk.ok());
  ASSERT_TRUE(central.ok());

  std::vector<std::vector<index::ScoredDoc>> hdk_r, bm25_r;
  for (const auto& q : queries) {
    hdk_r.push_back((*hdk)->Search(q.terms, 20).results);
    bm25_r.push_back((*central)->Search(q.terms, 20).results);
  }
  EXPECT_GT(MeanTopKOverlap(hdk_r, bm25_r, 20), 0.3);
}

}  // namespace
}  // namespace hdk::engine
