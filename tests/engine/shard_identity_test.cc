// The sharded global index's determinism contract: the HDK engine's
// published index and every traffic counter are identical at every thread
// count (and therefore every shard count — the heuristic picks 1 shard at
// num_threads == 1 and a pow2 multiple of the worker count otherwise) for
// a fresh build, a growth wave, and a join/leave/join churn sequence, on
// both overlays. Runs in the CI ThreadSanitizer job: the shard-parallel
// EndLevel/InsertPostings merge path is exactly what it stresses.
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/synthetic.h"
#include "engine/hdk_engine.h"
#include "engine/membership.h"
#include "engine/partition.h"
#include "hdk/indexer.h"
#include "net/traffic.h"

namespace hdk::engine {
namespace {

corpus::SyntheticCorpus TestCorpus() {
  corpus::SyntheticConfig cfg;
  cfg.seed = 4242;
  cfg.vocabulary_size = 2500;
  cfg.num_topics = 10;
  cfg.topic_width = 30;
  cfg.mean_doc_length = 45.0;
  cfg.topic_share = 0.7;
  return corpus::SyntheticCorpus(cfg);
}

HdkEngineConfig Config(OverlayKind overlay, size_t threads) {
  HdkEngineConfig config;
  config.hdk.df_max = 9;
  config.hdk.very_frequent_threshold = 450;
  config.hdk.window = 8;
  config.hdk.s_max = 3;
  config.overlay = overlay;
  config.num_threads = threads;
  return config;
}

/// Everything the determinism contract covers, captured after one
/// lifecycle stage.
struct StageSnapshot {
  std::string stage;
  hdk::HdkIndexContents contents;
  std::vector<net::TrafficCounters> by_kind;
  uint64_t total_keys = 0;
  uint64_t stored_postings = 0;
  uint64_t reclassified = 0;  // cumulative growth observability
};

StageSnapshot Capture(const std::string& stage,
                      const HdkSearchEngine& engine) {
  StageSnapshot snap;
  snap.stage = stage;
  snap.contents = engine.global_index().ExportContents();
  for (size_t k = 0; k < net::kNumMessageKinds; ++k) {
    snap.by_kind.push_back(
        engine.traffic()->ByKind(static_cast<net::MessageKind>(k)));
  }
  snap.total_keys = engine.global_index().TotalKeys();
  snap.stored_postings = engine.global_index().TotalStoredPostings();
  snap.reclassified = engine.last_growth().reclassified_keys;
  return snap;
}

void ExpectSameSnapshot(const StageSnapshot& want, const StageSnapshot& got,
                        size_t threads) {
  SCOPED_TRACE("stage '" + want.stage + "' at " +
               std::to_string(threads) + " threads");
  EXPECT_EQ(want.total_keys, got.total_keys);
  EXPECT_EQ(want.stored_postings, got.stored_postings);
  EXPECT_EQ(want.reclassified, got.reclassified);
  // Posting-for-posting identity of the published index.
  ASSERT_EQ(want.contents.size(), got.contents.size());
  for (const auto& [key, entry] : want.contents.entries()) {
    const hdk::KeyEntry* other = got.contents.Find(key);
    ASSERT_NE(other, nullptr) << "missing key " << key.ToString();
    EXPECT_EQ(entry.global_df, other->global_df) << key.ToString();
    EXPECT_EQ(entry.is_hdk, other->is_hdk) << key.ToString();
    EXPECT_EQ(entry.postings, other->postings) << key.ToString();
  }
  // Message-for-message traffic identity, per message kind.
  ASSERT_EQ(want.by_kind.size(), got.by_kind.size());
  for (size_t k = 0; k < want.by_kind.size(); ++k) {
    EXPECT_EQ(want.by_kind[k], got.by_kind[k])
        << net::MessageKindName(static_cast<net::MessageKind>(k));
  }
}

/// Runs the full lifecycle — fresh build, growth wave, join/leave/join
/// churn — at the given thread count and snapshots after every stage.
std::vector<StageSnapshot> RunLifecycle(OverlayKind overlay, size_t threads,
                                        corpus::DocumentStore& store) {
  std::vector<StageSnapshot> snaps;

  // Fresh build: 4 peers, 160 documents.
  auto built = HdkSearchEngine::Build(Config(overlay, threads), store,
                                      SplitEvenly(160, 4));
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  if (!built.ok()) return snaps;
  std::unique_ptr<HdkSearchEngine> engine = std::move(built).value();
  if (threads > 1) {
    // The parallel configurations must actually exercise sharding.
    EXPECT_GT(engine->global_index().num_shards(), 1u);
  } else {
    EXPECT_EQ(engine->global_index().num_shards(), 1u);
  }
  snaps.push_back(Capture("fresh build", *engine));

  // Growth wave: 2 peers join with 40 documents each.
  EXPECT_TRUE(
      engine->ApplyMembership(store, JoinWave(160, 2, 40)).ok());
  snaps.push_back(Capture("growth wave", *engine));

  // Churn: join / leave / join.
  std::vector<MembershipEvent> churn;
  churn.push_back(MembershipEvent::Join(DocRange{240, 280}));
  churn.push_back(MembershipEvent::Leave(1));
  churn.push_back(MembershipEvent::Join(DocRange{280, 320}));
  EXPECT_TRUE(engine->ApplyMembership(store, churn).ok());
  snaps.push_back(Capture("join/leave/join churn", *engine));
  return snaps;
}

class ShardIdentityTest : public ::testing::TestWithParam<OverlayKind> {};

TEST_P(ShardIdentityTest, LifecycleIdenticalAcrossThreadCounts) {
  corpus::SyntheticCorpus corpus = TestCorpus();
  corpus::DocumentStore store;
  corpus.FillStore(320, &store);

  const std::vector<StageSnapshot> reference =
      RunLifecycle(GetParam(), /*threads=*/1, store);
  ASSERT_EQ(reference.size(), 3u);

  for (size_t threads : {size_t{2}, size_t{4}}) {
    const std::vector<StageSnapshot> got =
        RunLifecycle(GetParam(), threads, store);
    ASSERT_EQ(got.size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      ExpectSameSnapshot(reference[i], got[i], threads);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BothOverlays, ShardIdentityTest,
    ::testing::Values(OverlayKind::kPGrid, OverlayKind::kChord),
    [](const ::testing::TestParamInfo<OverlayKind>& info) {
      return info.param == OverlayKind::kPGrid ? "pgrid" : "chord";
    });

}  // namespace
}  // namespace hdk::engine
