#include "hdk/candidate_builder.h"

#include <gtest/gtest.h>

#include "text/window.h"

namespace hdk::hdk {
namespace {

HdkParams SmallParams(uint32_t window = 5, Freq df_max = 1) {
  HdkParams p;
  p.window = window;
  p.df_max = df_max;
  p.s_max = 3;
  p.very_frequent_threshold = 1000000;
  return p;
}

TEST(CandidateBuilderLevel1Test, CountsDocumentFrequencies) {
  corpus::DocumentStore store;
  store.Add({1, 2, 1});  // doc 0
  store.Add({2, 3});     // doc 1
  CandidateBuilder builder(SmallParams());
  CandidateBuildStats stats;
  auto candidates = builder.BuildLevel1(store, 0, 2, {}, &stats);

  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_EQ(candidates.at(TermKey{1u}).size(), 1u);
  EXPECT_EQ(candidates.at(TermKey{2u}).size(), 2u);
  EXPECT_EQ(candidates.at(TermKey{3u}).size(), 1u);
  // tf and doc length are carried in postings.
  EXPECT_EQ(candidates.at(TermKey{1u})[0].tf, 2u);
  EXPECT_EQ(candidates.at(TermKey{1u})[0].doc_length, 3u);
  EXPECT_EQ(stats.documents_scanned, 2u);
  EXPECT_EQ(stats.positions_scanned, 5u);
}

TEST(CandidateBuilderLevel1Test, ExcludesVeryFrequentTerms) {
  corpus::DocumentStore store;
  store.Add({1, 2});
  CandidateBuilder builder(SmallParams());
  auto candidates =
      builder.BuildLevel1(store, 0, 1, {1u}, nullptr);
  EXPECT_EQ(candidates.size(), 1u);
  EXPECT_TRUE(candidates.count(TermKey{2u}) > 0);
}

TEST(CandidateBuilderLevel1Test, RespectsDocRange) {
  corpus::DocumentStore store;
  store.Add({1});
  store.Add({2});
  store.Add({3});
  CandidateBuilder builder(SmallParams());
  auto candidates = builder.BuildLevel1(store, 1, 2, {}, nullptr);
  EXPECT_EQ(candidates.size(), 1u);
  EXPECT_TRUE(candidates.count(TermKey{2u}) > 0);
}

class Level2Test : public ::testing::Test {
 protected:
  // All terms expandable unless stated otherwise.
  void MakeOracle(std::initializer_list<TermId> terms) {
    for (TermId t : terms) oracle_.AddExpandableTerm(t);
  }
  SetNdkOracle oracle_;
};

TEST_F(Level2Test, PairsRequireWindowCoOccurrence) {
  corpus::DocumentStore store;
  // window = 3: terms 1 and 2 are 3 positions apart -> no co-occurrence;
  // terms 2 and 3 are adjacent.
  store.Add({1, 9, 9, 2, 3});
  MakeOracle({1, 2, 3});
  HdkParams p = SmallParams(/*window=*/3);
  CandidateBuilder builder(p);
  auto candidates = builder.BuildLevel(2, store, 0, 1, oracle_, nullptr);

  EXPECT_EQ(candidates.count(TermKey{1, 2}), 0u);
  EXPECT_EQ(candidates.count(TermKey{2, 3}), 1u);
  // 9 is not expandable: no keys with it.
  EXPECT_EQ(candidates.count(TermKey{2u, 9u}), 0u);
}

TEST_F(Level2Test, WiderWindowFindsDistantPairs) {
  corpus::DocumentStore store;
  store.Add({1, 9, 9, 2});
  MakeOracle({1, 2});
  CandidateBuilder builder(SmallParams(/*window=*/4));
  auto candidates = builder.BuildLevel(2, store, 0, 1, oracle_, nullptr);
  EXPECT_EQ(candidates.count(TermKey{1, 2}), 1u);
}

TEST_F(Level2Test, DfCountsDocumentsOnce) {
  corpus::DocumentStore store;
  store.Add({1, 2, 1, 2, 1, 2});  // many co-occurrences, one document
  store.Add({1, 2});
  MakeOracle({1, 2});
  CandidateBuilder builder(SmallParams(/*window=*/2));
  auto candidates = builder.BuildLevel(2, store, 0, 2, oracle_, nullptr);
  ASSERT_EQ(candidates.count(TermKey{1, 2}), 1u);
  const index::PostingList& pl = candidates.at(TermKey{1, 2});
  EXPECT_EQ(pl.size(), 2u);           // df = 2 documents
  EXPECT_GT(pl[0].tf, 1u);            // multiple windows in doc 0
  EXPECT_EQ(pl[1].tf, 1u);
}

TEST_F(Level2Test, NonExpandableNewTermIsHole) {
  corpus::DocumentStore store;
  store.Add({1, 7, 2});
  MakeOracle({1, 2});  // 7 missing
  CandidateBuilder builder(SmallParams(/*window=*/3));
  auto candidates = builder.BuildLevel(2, store, 0, 1, oracle_, nullptr);
  // {1,2} co-occur within window 3 (positions 0 and 2).
  EXPECT_EQ(candidates.count(TermKey{1, 2}), 1u);
  EXPECT_EQ(candidates.count(TermKey{1, 7}), 0u);
  EXPECT_EQ(candidates.count(TermKey{2, 7}), 0u);
}

TEST_F(Level2Test, SelfPairsNeverForm) {
  corpus::DocumentStore store;
  store.Add({1, 1, 1});
  MakeOracle({1});
  CandidateBuilder builder(SmallParams(/*window=*/3));
  auto candidates = builder.BuildLevel(2, store, 0, 1, oracle_, nullptr);
  EXPECT_TRUE(candidates.empty());
}

TEST(Level3Test, RequiresAllPairsNonDiscriminative) {
  corpus::DocumentStore store;
  store.Add({1, 2, 3});
  store.Add({1, 2, 3});

  SetNdkOracle oracle;
  for (TermId t : {1u, 2u, 3u}) oracle.AddExpandableTerm(t);
  // Only {1,2} and {1,3} are NDKs; {2,3} is missing.
  oracle.AddNdk(TermKey{1, 2});
  oracle.AddNdk(TermKey{1, 3});

  CandidateBuilder builder(SmallParams(/*window=*/5));
  CandidateBuildStats stats;
  auto candidates = builder.BuildLevel(3, store, 0, 2, oracle, &stats);
  // The {2,3} pair is not known non-discriminative, so no triple may form
  // (the candidate pool filter rejects it before any formation event).
  EXPECT_EQ(candidates.count(TermKey{1, 2, 3}), 0u);

  // Adding the missing pair unlocks the triple.
  oracle.AddNdk(TermKey{2, 3});
  candidates = builder.BuildLevel(3, store, 0, 2, oracle, nullptr);
  ASSERT_EQ(candidates.count(TermKey{1, 2, 3}), 1u);
  EXPECT_EQ(candidates.at(TermKey{1, 2, 3}).size(), 2u);  // df = 2
}

TEST(Level3Test, TripleNeedsWindowCoOccurrence) {
  corpus::DocumentStore store;
  store.Add({1, 2, 9, 9, 9, 3});  // 1,2 adjacent; 3 far away

  SetNdkOracle oracle;
  for (TermId t : {1u, 2u, 3u}) oracle.AddExpandableTerm(t);
  oracle.AddNdk(TermKey{1, 2});
  oracle.AddNdk(TermKey{1, 3});
  oracle.AddNdk(TermKey{2, 3});

  CandidateBuilder builder(SmallParams(/*window=*/3));
  auto candidates = builder.BuildLevel(3, store, 0, 1, oracle, nullptr);
  EXPECT_EQ(candidates.count(TermKey{1, 2, 3}), 0u);

  CandidateBuilder wide(SmallParams(/*window=*/6));
  candidates = wide.BuildLevel(3, store, 0, 1, oracle, nullptr);
  EXPECT_EQ(candidates.count(TermKey{1, 2, 3}), 1u);
}

TEST(CandidateOracleAgreementTest, Level2MatchesWindowOracle) {
  // Every generated pair must co-occur per WindowCoOccurs, and every
  // co-occurring expandable pair must be generated.
  corpus::DocumentStore store;
  store.Add({4, 1, 5, 2, 1, 3});
  store.Add({2, 2, 4, 1});
  store.Add({5, 3, 3, 1, 2, 4, 5});

  SetNdkOracle oracle;
  for (TermId t : {1u, 2u, 3u, 4u, 5u}) oracle.AddExpandableTerm(t);

  const uint32_t w = 3;
  CandidateBuilder builder(SmallParams(w));
  auto candidates = builder.BuildLevel(2, store, 0, 3, oracle, nullptr);

  for (TermId a = 1; a <= 5; ++a) {
    for (TermId b = a + 1; b <= 5; ++b) {
      TermKey key{a, b};
      uint64_t expected_df = 0;
      for (DocId d = 0; d < 3; ++d) {
        std::vector<TermId> kv{a, b};
        if (text::WindowCoOccurs(store.Tokens(d), w, kv)) ++expected_df;
      }
      auto it = candidates.find(key);
      uint64_t actual_df = it == candidates.end() ? 0 : it->second.size();
      EXPECT_EQ(actual_df, expected_df) << key.ToString();
    }
  }
}

}  // namespace
}  // namespace hdk::hdk
