#include "hdk/indexer.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "corpus/synthetic.h"
#include "text/window.h"

namespace hdk::hdk {
namespace {

// A small synthetic collection with enough co-occurrence to produce
// multi-term keys.
class HdkIndexerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus::SyntheticConfig cfg;
    cfg.seed = 4242;
    cfg.vocabulary_size = 4000;
    cfg.num_topics = 15;
    cfg.topic_width = 40;
    cfg.mean_doc_length = 60.0;
    cfg.topic_share = 0.7;
    corpus::SyntheticCorpus corpus(cfg);
    corpus.FillStore(250, &store_);
    stats_ = std::make_unique<corpus::CollectionStats>(store_);

    params_.df_max = 12;
    params_.very_frequent_threshold = 800;
    params_.window = 8;
    params_.s_max = 3;
  }

  Result<HdkIndexContents> BuildIndex(BuildReport* report = nullptr) {
    CentralizedHdkIndexer indexer(params_);
    return indexer.Build(store_, *stats_, report);
  }

  corpus::DocumentStore store_;
  std::unique_ptr<corpus::CollectionStats> stats_;
  HdkParams params_;
};

TEST_F(HdkIndexerTest, BuildsNonTrivialIndex) {
  BuildReport report;
  auto contents = BuildIndex(&report);
  ASSERT_TRUE(contents.ok());
  EXPECT_GT(contents->size(), 0u);
  ASSERT_EQ(report.levels.size(), 3u);
  EXPECT_GT(report.levels[0].candidates, 0u);
  // The collection must be rich enough to produce level-2 keys, otherwise
  // the fixture is useless.
  EXPECT_GT(report.levels[1].candidates, 0u);
}

TEST_F(HdkIndexerTest, KeySizesRespectSizeFiltering) {
  auto contents = BuildIndex();
  ASSERT_TRUE(contents.ok());
  for (const auto& [key, entry] : contents->entries()) {
    EXPECT_GE(key.size(), 1u);
    EXPECT_LE(key.size(), params_.s_max);
  }
}

TEST_F(HdkIndexerTest, HdkAndNdkClassificationByDfMax) {
  auto contents = BuildIndex();
  ASSERT_TRUE(contents.ok());
  for (const auto& [key, entry] : contents->entries()) {
    if (entry.is_hdk) {
      EXPECT_LE(entry.global_df, params_.df_max) << key.ToString();
      // HDKs store FULL posting lists.
      EXPECT_EQ(entry.postings.size(), entry.global_df) << key.ToString();
    } else {
      EXPECT_GT(entry.global_df, params_.df_max) << key.ToString();
      // NDK posting lists are truncated to top-DFmax.
      EXPECT_EQ(entry.postings.size(), params_.df_max) << key.ToString();
    }
  }
}

TEST_F(HdkIndexerTest, HdksAreIntrinsicallyDiscriminative) {
  // Paper Def. 5: every proper sub-key of an HDK of size >= 2 must be
  // non-discriminative (and hence present in the index as an NDK).
  auto contents = BuildIndex();
  ASSERT_TRUE(contents.ok());
  size_t multi_term_hdks = 0;
  for (const auto& [key, entry] : contents->entries()) {
    if (!entry.is_hdk || key.size() < 2) continue;
    ++multi_term_hdks;
    for (uint32_t i = 0; i < key.size(); ++i) {
      TermKey sub = key.DropTerm(i);
      const KeyEntry* sub_entry = contents->Find(sub);
      ASSERT_NE(sub_entry, nullptr)
          << "missing sub-key " << sub.ToString() << " of "
          << key.ToString();
      EXPECT_FALSE(sub_entry->is_hdk);
      EXPECT_GT(sub_entry->global_df, params_.df_max);
    }
  }
  EXPECT_GT(multi_term_hdks, 0u) << "fixture produced no multi-term HDKs";
}

TEST_F(HdkIndexerTest, NoIndexedKeyIsSupersetOfAnHdk) {
  // Redundancy filtering: supersets of discriminative keys are never
  // stored.
  auto contents = BuildIndex();
  ASSERT_TRUE(contents.ok());
  std::vector<TermKey> hdks;
  for (const auto& [key, entry] : contents->entries()) {
    if (entry.is_hdk) hdks.push_back(key);
  }
  for (const auto& [key, entry] : contents->entries()) {
    for (const TermKey& h : hdks) {
      if (key.size() > h.size()) {
        EXPECT_FALSE(key.ContainsAll(h))
            << key.ToString() << " is a superset of HDK " << h.ToString();
      }
    }
  }
}

TEST_F(HdkIndexerTest, DfAntiMonotonicity) {
  // df(superset) <= df(subset) for every indexed key pair.
  auto contents = BuildIndex();
  ASSERT_TRUE(contents.ok());
  for (const auto& [key, entry] : contents->entries()) {
    if (key.size() < 2) continue;
    for (uint32_t i = 0; i < key.size(); ++i) {
      const KeyEntry* sub = contents->Find(key.DropTerm(i));
      if (sub != nullptr) {
        EXPECT_LE(entry.global_df, sub->global_df);
      }
    }
  }
}

TEST_F(HdkIndexerTest, HdkPostingsMatchWindowOracle) {
  // Every multi-term HDK's posting list must be exactly the documents
  // where its terms co-occur within the window (spot-check a sample).
  auto contents = BuildIndex();
  ASSERT_TRUE(contents.ok());
  size_t checked = 0;
  for (const auto& [key, entry] : contents->entries()) {
    if (!entry.is_hdk || key.size() < 2) continue;
    if (++checked > 25) break;  // sample
    std::vector<DocId> expected;
    for (DocId d = 0; d < store_.size(); ++d) {
      if (text::WindowCoOccurs(store_.Tokens(d), params_.window,
                               key.terms())) {
        expected.push_back(d);
      }
    }
    EXPECT_EQ(entry.postings.Documents(), expected) << key.ToString();
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(HdkIndexerTest, VeryFrequentTermsNeverAppearInKeys) {
  auto vf = stats_->VeryFrequentTerms(params_.very_frequent_threshold);
  ASSERT_FALSE(vf.empty()) << "fixture needs very frequent terms";
  auto contents = BuildIndex();
  ASSERT_TRUE(contents.ok());
  for (const auto& [key, entry] : contents->entries()) {
    for (TermId t : vf) {
      EXPECT_FALSE(key.Contains(t)) << key.ToString();
    }
  }
}

TEST_F(HdkIndexerTest, Level1CoversAllNonVfTerms) {
  auto contents = BuildIndex();
  ASSERT_TRUE(contents.ok());
  std::unordered_set<TermId> vf;
  for (TermId t :
       stats_->VeryFrequentTerms(params_.very_frequent_threshold)) {
    vf.insert(t);
  }
  for (TermId t = 0; t < stats_->cf().size(); ++t) {
    if (stats_->CollectionFrequency(t) == 0) continue;
    const KeyEntry* entry = contents->Find(TermKey{t});
    if (vf.count(t) > 0) {
      EXPECT_EQ(entry, nullptr) << t;
    } else {
      ASSERT_NE(entry, nullptr) << t;
      EXPECT_EQ(entry->global_df, stats_->DocumentFrequency(t)) << t;
    }
  }
}

TEST_F(HdkIndexerTest, ReportAccounting) {
  BuildReport report;
  auto contents = BuildIndex(&report);
  ASSERT_TRUE(contents.ok());
  // Stored postings in the report must equal the index contents.
  EXPECT_EQ(report.TotalStoredPostings(), contents->StoredPostings());
  // Generated >= stored (truncation only removes).
  EXPECT_GE(report.TotalGeneratedPostings(), report.TotalStoredPostings());
  for (const auto& level : report.levels) {
    EXPECT_EQ(level.candidates, level.hdks + level.ndks);
    EXPECT_EQ(contents->NumKeys(level.level), level.candidates);
    EXPECT_EQ(contents->NumHdks(level.level), level.hdks);
    EXPECT_EQ(contents->NumNdks(level.level), level.ndks);
    EXPECT_EQ(contents->StoredPostings(level.level),
              level.stored_postings);
  }
}

TEST_F(HdkIndexerTest, HigherDfMaxShrinksKeyVocabulary) {
  // Increasing DFmax moves keys from NDK to HDK and suppresses expansion:
  // fewer multi-term keys overall (HDK indexing approaches single-term
  // indexing as DFmax grows, Section 5).
  auto small_dfmax = BuildIndex();
  ASSERT_TRUE(small_dfmax.ok());

  params_.df_max = 40;
  auto large_dfmax = BuildIndex();
  ASSERT_TRUE(large_dfmax.ok());

  EXPECT_LE(large_dfmax->NumKeys(2) + large_dfmax->NumKeys(3),
            small_dfmax->NumKeys(2) + small_dfmax->NumKeys(3));
}

TEST_F(HdkIndexerTest, DeterministicRebuild) {
  auto a = BuildIndex();
  auto b = BuildIndex();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (const auto& [key, entry] : a->entries()) {
    const KeyEntry* other = b->Find(key);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(entry.global_df, other->global_df);
    EXPECT_EQ(entry.is_hdk, other->is_hdk);
    EXPECT_EQ(entry.postings, other->postings);
  }
}

TEST_F(HdkIndexerTest, RejectsMismatchedStats) {
  corpus::DocumentStore other;
  other.Add({1, 2, 3});
  corpus::CollectionStats other_stats(other);
  CentralizedHdkIndexer indexer(params_);
  EXPECT_FALSE(indexer.Build(store_, other_stats).ok());
}

TEST(TruncationScoreTest, PrefersHigherTfAndShorterDocs) {
  index::Posting high_tf{0, 10, 100};
  index::Posting low_tf{1, 1, 100};
  EXPECT_GT(TruncationScore(high_tf, 100.0), TruncationScore(low_tf, 100.0));

  index::Posting short_doc{2, 3, 50};
  index::Posting long_doc{3, 3, 500};
  EXPECT_GT(TruncationScore(short_doc, 100.0),
            TruncationScore(long_doc, 100.0));
}

}  // namespace
}  // namespace hdk::hdk
