#include "hdk/key.h"

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

namespace hdk::hdk {
namespace {

TEST(TermKeyTest, SingleTerm) {
  TermKey k(42u);
  EXPECT_EQ(k.size(), 1u);
  EXPECT_EQ(k.term(0), 42u);
  EXPECT_TRUE(k.Contains(42));
  EXPECT_FALSE(k.Contains(41));
}

TEST(TermKeyTest, CanonicalizesOrder) {
  TermKey a{3, 1, 2};
  TermKey b{1, 2, 3};
  TermKey c{2, 3, 1};
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
  EXPECT_EQ(a.term(0), 1u);
  EXPECT_EQ(a.term(1), 2u);
  EXPECT_EQ(a.term(2), 3u);
}

TEST(TermKeyTest, Deduplicates) {
  TermKey k{5, 5, 7, 5};
  EXPECT_EQ(k.size(), 2u);
  EXPECT_EQ(k.term(0), 5u);
  EXPECT_EQ(k.term(1), 7u);
}

TEST(TermKeyTest, EmptyKey) {
  TermKey k;
  EXPECT_TRUE(k.empty());
  EXPECT_EQ(k.size(), 0u);
}

TEST(TermKeyTest, HashConsistentWithEquality) {
  TermKey a{3, 1};
  TermKey b{1, 3};
  EXPECT_EQ(a.Hash64(), b.Hash64());
  TermKey c{1, 4};
  EXPECT_NE(a.Hash64(), c.Hash64());
}

TEST(TermKeyTest, HashDistinguishesSizes) {
  TermKey a{1};
  TermKey b{1, 2};
  EXPECT_NE(a.Hash64(), b.Hash64());
}

TEST(TermKeyTest, ContainsAll) {
  TermKey big{1, 2, 3};
  EXPECT_TRUE(big.ContainsAll(TermKey{1}));
  EXPECT_TRUE(big.ContainsAll(TermKey{1, 3}));
  EXPECT_TRUE(big.ContainsAll(big));
  EXPECT_FALSE(big.ContainsAll(TermKey{1, 4}));
  EXPECT_FALSE((TermKey{1}).ContainsAll(big));
}

TEST(TermKeyTest, ExtendKeepsSortedOrder) {
  TermKey k{10, 30};
  TermKey e = k.Extend(20);
  EXPECT_EQ(e.size(), 3u);
  EXPECT_EQ(e.term(0), 10u);
  EXPECT_EQ(e.term(1), 20u);
  EXPECT_EQ(e.term(2), 30u);
  // Original unchanged.
  EXPECT_EQ(k.size(), 2u);
}

TEST(TermKeyTest, ExtendAtEnds) {
  TermKey k{10, 20};
  EXPECT_EQ(k.Extend(5).term(0), 5u);
  EXPECT_EQ(k.Extend(25).term(2), 25u);
}

TEST(TermKeyTest, DropTerm) {
  TermKey k{1, 2, 3};
  EXPECT_EQ(k.DropTerm(0), (TermKey{2, 3}));
  EXPECT_EQ(k.DropTerm(1), (TermKey{1, 3}));
  EXPECT_EQ(k.DropTerm(2), (TermKey{1, 2}));
}

TEST(TermKeyTest, DropThenExtendRoundTrips) {
  TermKey k{4, 8, 15};
  for (uint32_t i = 0; i < k.size(); ++i) {
    TermKey sub = k.DropTerm(i);
    EXPECT_EQ(sub.Extend(k.term(i)), k);
  }
}

TEST(TermKeyTest, OrderingBySizeThenTerms) {
  std::set<TermKey> keys{TermKey{5}, TermKey{1, 2}, TermKey{1},
                         TermKey{1, 3}};
  std::vector<TermKey> sorted(keys.begin(), keys.end());
  EXPECT_EQ(sorted[0], TermKey{1});
  EXPECT_EQ(sorted[1], TermKey{5});
  EXPECT_EQ(sorted[2], (TermKey{1, 2}));
  EXPECT_EQ(sorted[3], (TermKey{1, 3}));
}

TEST(TermKeyTest, WorksInUnorderedContainers) {
  std::unordered_set<TermKey, TermKey::Hasher> set;
  set.insert(TermKey{1, 2});
  set.insert(TermKey{2, 1});  // same key
  set.insert(TermKey{3});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(TermKey{1, 2}) > 0);
}

TEST(TermKeyTest, ToStringRendersSorted) {
  EXPECT_EQ((TermKey{3, 1}).ToString(), "{1,3}");
  EXPECT_EQ(TermKey(7u).ToString(), "{7}");
}

TEST(TermKeyTest, SpanConstructor) {
  std::vector<TermId> terms{9, 4, 4};
  TermKey k{std::span<const TermId>(terms)};
  EXPECT_EQ(k, (TermKey{4, 9}));
}

}  // namespace
}  // namespace hdk::hdk
