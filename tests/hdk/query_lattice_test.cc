#include "hdk/query_lattice.h"

#include <map>

#include <gtest/gtest.h>

#include "hdk/candidate_builder.h"

namespace hdk::hdk {
namespace {

TEST(NumQueryKeysTest, MatchesPaperFormula) {
  // |q| <= s_max: nk = 2^q - 1.
  EXPECT_EQ(NumQueryKeys(1, 3), 1u);
  EXPECT_EQ(NumQueryKeys(2, 3), 3u);
  EXPECT_EQ(NumQueryKeys(3, 3), 7u);
  // |q| > s_max: nk = C(q,1) + ... + C(q,s_max).
  EXPECT_EQ(NumQueryKeys(4, 3), 4u + 6u + 4u);
  EXPECT_EQ(NumQueryKeys(8, 3), 8u + 28u + 56u);
  EXPECT_EQ(NumQueryKeys(5, 2), 5u + 10u);
}

TEST(NumQueryKeysTest, PaperAverageExample) {
  // Paper Section 4.2: "the average size of a query is 2.3 in the
  // Wikipedia query log, and nk ~ 3.92" — interpolating between
  // nk(2) = 3 and nk(3) = 7 at 2.3 gives ~4.
  double nk = 0.7 * static_cast<double>(NumQueryKeys(2, 3)) +
              0.3 * static_cast<double>(NumQueryKeys(3, 3));
  EXPECT_NEAR(nk, 4.2, 0.5);
}

TEST(EnumerateQuerySubsetsTest, AllSubsetsUpToSmax) {
  std::vector<TermId> q{1, 2, 3};
  auto subsets = EnumerateQuerySubsets(q, 3);
  ASSERT_EQ(subsets.size(), 7u);
  // Ordered by size.
  EXPECT_EQ(subsets[0].size(), 1u);
  EXPECT_EQ(subsets[3].size(), 2u);
  EXPECT_EQ(subsets[6].size(), 3u);
  EXPECT_EQ(subsets[6], (TermKey{1, 2, 3}));
}

TEST(EnumerateQuerySubsetsTest, SmaxLimitsSubsetSize) {
  std::vector<TermId> q{1, 2, 3, 4};
  auto subsets = EnumerateQuerySubsets(q, 2);
  EXPECT_EQ(subsets.size(), 4u + 6u);
  for (const auto& s : subsets) {
    EXPECT_LE(s.size(), 2u);
  }
}

TEST(EnumerateQuerySubsetsTest, DeduplicatesQueryTerms) {
  std::vector<TermId> q{2, 1, 2, 1};
  auto subsets = EnumerateQuerySubsets(q, 3);
  ASSERT_EQ(subsets.size(), 3u);  // {1}, {2}, {1,2}
}

TEST(EnumerateQuerySubsetsTest, CountMatchesFormula) {
  for (uint32_t qsize = 1; qsize <= 6; ++qsize) {
    std::vector<TermId> q;
    for (TermId t = 0; t < qsize; ++t) q.push_back(t * 10);
    for (uint32_t smax = 1; smax <= 4; ++smax) {
      EXPECT_EQ(EnumerateQuerySubsets(q, smax).size(),
                NumQueryKeys(qsize, smax))
          << "q=" << qsize << " smax=" << smax;
    }
  }
}

// Scripted index for PlanRetrieval: a map from key to classification.
class ScriptedIndex {
 public:
  void AddHdk(TermKey k) { entries_[std::move(k)] = true; }
  void AddNdk(TermKey k) { entries_[std::move(k)] = false; }

  ProbeFn AsProbe() {
    return [this](const TermKey& k) -> std::optional<ProbeOutcome> {
      ++probes_;
      auto it = entries_.find(k);
      if (it == entries_.end()) return std::nullopt;
      return ProbeOutcome{it->second};
    };
  }

  uint64_t probes() const { return probes_; }

 private:
  KeyMap<bool> entries_;
  uint64_t probes_ = 0;
};

TEST(PlanRetrievalTest, FetchesMatchingKeys) {
  ScriptedIndex index;
  index.AddNdk(TermKey{1});
  index.AddNdk(TermKey{2});
  index.AddHdk(TermKey{1, 2});
  std::vector<TermId> q{1, 2};
  auto plan = PlanRetrieval(q, 3, index.AsProbe());
  EXPECT_EQ(plan.fetched.size(), 3u);
  EXPECT_EQ(plan.probes, 3u);
  EXPECT_EQ(plan.pruned, 0u);
}

TEST(PlanRetrievalTest, PrunesSupersetsOfMatchedHdks) {
  // {1} is an HDK: {1,2}, {1,3}, {1,2,3} are redundant and never probed.
  ScriptedIndex index;
  index.AddHdk(TermKey{1});
  index.AddNdk(TermKey{2});
  index.AddNdk(TermKey{3});
  index.AddNdk(TermKey{2, 3});
  std::vector<TermId> q{1, 2, 3};
  auto plan = PlanRetrieval(q, 3, index.AsProbe());
  EXPECT_EQ(plan.fetched.size(), 4u);  // {1},{2},{3},{2,3}
  EXPECT_EQ(plan.pruned, 3u);          // {1,2},{1,3},{1,2,3}
  EXPECT_EQ(plan.probes, 4u);
  EXPECT_EQ(index.probes(), 4u);
}

TEST(PlanRetrievalTest, PrunesSupersetsOfAbsentKeys) {
  // Term 9 is unknown: all subsets containing it are skipped after the
  // first miss.
  ScriptedIndex index;
  index.AddNdk(TermKey{1});
  index.AddNdk(TermKey{2});
  index.AddNdk(TermKey{1, 2});
  std::vector<TermId> q{1, 2, 9};
  auto plan = PlanRetrieval(q, 3, index.AsProbe());
  EXPECT_EQ(plan.fetched.size(), 3u);
  // {9} probed (miss); {1,9},{2,9},{1,2,9} pruned.
  EXPECT_EQ(plan.probes, 4u);
  EXPECT_EQ(plan.pruned, 3u);
}

TEST(PlanRetrievalTest, EmptyQueryFetchesNothing) {
  ScriptedIndex index;
  std::vector<TermId> q;
  auto plan = PlanRetrieval(q, 3, index.AsProbe());
  EXPECT_TRUE(plan.fetched.empty());
  EXPECT_EQ(plan.probes, 0u);
}

TEST(RankFetchedKeysTest, MergesAndRanks) {
  index::PostingList pl1({{0, 3, 100}, {1, 1, 100}});
  index::PostingList pl2({{1, 2, 100}, {2, 2, 100}});
  std::vector<FetchedKey> fetched{
      {TermKey{1}, 2, false, &pl1},
      {TermKey{2}, 2, false, &pl2},
  };
  auto results = RankFetchedKeys(fetched, 100, 100.0, 10);
  ASSERT_EQ(results.size(), 3u);
  // Doc 1 matches both keys: should rank first.
  EXPECT_EQ(results[0].doc, 1u);
}

TEST(RankFetchedKeysTest, RarerKeysWeighMore) {
  index::PostingList common({{0, 1, 100}});
  index::PostingList rare({{1, 1, 100}});
  std::vector<FetchedKey> fetched{
      {TermKey{1}, 90, false, &common},  // df 90 of 100 docs
      {TermKey{2}, 2, true, &rare},      // df 2
  };
  auto results = RankFetchedKeys(fetched, 100, 100.0, 10);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].doc, 1u);  // matched the rare key
}

TEST(RankFetchedKeysTest, NullPostingsSkipped) {
  std::vector<FetchedKey> fetched{{TermKey{1}, 5, false, nullptr}};
  EXPECT_TRUE(RankFetchedKeys(fetched, 10, 10.0, 5).empty());
}

TEST(RankFetchedKeysTest, KLimitsOutput) {
  index::PostingList pl({{0, 1, 10}, {1, 2, 10}, {2, 3, 10}});
  std::vector<FetchedKey> fetched{{TermKey{1}, 3, true, &pl}};
  EXPECT_EQ(RankFetchedKeys(fetched, 10, 10.0, 2).size(), 2u);
}

}  // namespace
}  // namespace hdk::hdk
