// Randomized property tests of the paper's Section-3 model invariants,
// swept across DFmax, window size and corpus seeds (TEST_P).
#include <algorithm>
#include <memory>
#include <tuple>
#include <unordered_set>

#include <gtest/gtest.h>

#include "corpus/stats.h"
#include "corpus/synthetic.h"
#include "hdk/indexer.h"
#include "hdk/query_lattice.h"
#include "text/window.h"

namespace hdk::hdk {
namespace {

// (df_max, window, corpus seed)
using Params = std::tuple<Freq, uint32_t, uint64_t>;

class ModelPropertyTest : public ::testing::TestWithParam<Params> {
 protected:
  void SetUp() override {
    corpus::SyntheticConfig cfg;
    cfg.seed = std::get<2>(GetParam());
    cfg.vocabulary_size = 2500;
    cfg.num_topics = 10;
    cfg.topic_width = 30;
    cfg.mean_doc_length = 45.0;
    cfg.topic_share = 0.7;
    corpus::SyntheticCorpus corpus(cfg);
    corpus.FillStore(150, &store_);
    stats_ = std::make_unique<corpus::CollectionStats>(store_);

    params_.df_max = std::get<0>(GetParam());
    params_.window = std::get<1>(GetParam());
    params_.s_max = 3;
    params_.very_frequent_threshold = 400;

    CentralizedHdkIndexer indexer(params_);
    auto built = indexer.Build(store_, *stats_);
    ASSERT_TRUE(built.ok());
    contents_ = std::make_unique<HdkIndexContents>(std::move(built).value());
  }

  corpus::DocumentStore store_;
  std::unique_ptr<corpus::CollectionStats> stats_;
  HdkParams params_;
  std::unique_ptr<HdkIndexContents> contents_;
};

TEST_P(ModelPropertyTest, ClassificationMatchesDfMax) {
  for (const auto& [key, entry] : contents_->entries()) {
    if (entry.is_hdk) {
      EXPECT_LE(entry.global_df, params_.df_max);
    } else {
      EXPECT_GT(entry.global_df, params_.df_max);
      EXPECT_LE(entry.postings.size(), params_.EffectiveNdkTruncation());
    }
  }
}

TEST_P(ModelPropertyTest, SubsumptionAntiMonotonicity) {
  // Paper: "Any key containing a DK of smaller size is also a DK. Any key
  // contained in an NDK of bigger size is also an NDK." Verified via df
  // ordering between every indexed key and its indexed sub-keys.
  for (const auto& [key, entry] : contents_->entries()) {
    if (key.size() < 2) continue;
    for (uint32_t i = 0; i < key.size(); ++i) {
      const KeyEntry* sub = contents_->Find(key.DropTerm(i));
      if (sub == nullptr) continue;
      EXPECT_LE(entry.global_df, sub->global_df)
          << key.ToString() << " vs " << key.DropTerm(i).ToString();
    }
  }
}

TEST_P(ModelPropertyTest, IntrinsicDiscriminativeness) {
  for (const auto& [key, entry] : contents_->entries()) {
    if (!entry.is_hdk || key.size() < 2) continue;
    for (uint32_t i = 0; i < key.size(); ++i) {
      const KeyEntry* sub = contents_->Find(key.DropTerm(i));
      ASSERT_NE(sub, nullptr) << key.ToString();
      EXPECT_FALSE(sub->is_hdk) << key.ToString();
    }
  }
}

TEST_P(ModelPropertyTest, ProximityHoldsForEveryStoredPosting) {
  // Every posting of every multi-term key refers to a document where the
  // key's terms co-occur within a window of w (sampled for speed).
  size_t checked = 0;
  for (const auto& [key, entry] : contents_->entries()) {
    if (key.size() < 2) continue;
    if (++checked > 40) break;
    for (const auto& posting : entry.postings.postings()) {
      EXPECT_TRUE(text::WindowCoOccurs(store_.Tokens(posting.doc),
                                       params_.window, key.terms()))
          << key.ToString() << " doc " << posting.doc;
    }
  }
}

TEST_P(ModelPropertyTest, IndexingExhaustiveness) {
  // Redundancy filtering preserves exhaustiveness: for a sampled document
  // and a sampled co-occurring term pair from it, either the pair (or a
  // sub-key of it) is in the index, or a member term is very frequent.
  std::unordered_set<TermId> vf;
  for (TermId t :
       stats_->VeryFrequentTerms(params_.very_frequent_threshold)) {
    vf.insert(t);
  }
  for (DocId d = 0; d < store_.size(); d += 17) {
    auto tokens = store_.Tokens(d);
    if (tokens.size() < 2) continue;
    for (size_t i = 0; i + 1 < std::min<size_t>(tokens.size(), 20); i += 5) {
      TermId a = tokens[i], b = tokens[i + 1];
      if (a == b || vf.count(a) > 0 || vf.count(b) > 0) continue;
      // Adjacent terms co-occur within any window >= 2. The answer for
      // query {a,b} must be coverable: {a,b} indexed, or one of the
      // singletons is discriminative (HDK) so PL({a}) covers it.
      const KeyEntry* pair_entry = contents_->Find(TermKey{a, b});
      const KeyEntry* ea = contents_->Find(TermKey{a});
      const KeyEntry* eb = contents_->Find(TermKey{b});
      ASSERT_NE(ea, nullptr);
      ASSERT_NE(eb, nullptr);
      bool covered = pair_entry != nullptr || ea->is_hdk || eb->is_hdk;
      EXPECT_TRUE(covered)
          << "pair {" << a << "," << b << "} in doc " << d
          << " not representable";
      // And when the singleton is the cover, the document is inside its
      // full posting list.
      if (pair_entry == nullptr) {
        const KeyEntry* cover = ea->is_hdk ? ea : eb;
        EXPECT_TRUE(cover->postings.Contains(d));
      }
    }
  }
}

TEST_P(ModelPropertyTest, RetrievalCoverageThroughLattice) {
  // End-to-end exhaustiveness at the retrieval layer: for sampled docs
  // and 2-term window queries, the lattice plan's fetched keys include
  // the source document unless every matched key is a truncated NDK.
  for (DocId d = 0; d < store_.size(); d += 29) {
    auto tokens = store_.Tokens(d);
    if (tokens.size() < 2) continue;
    std::vector<TermId> q{tokens[0], tokens[1]};
    if (q[0] == q[1]) continue;
    bool doc_seen = false;
    bool all_truncated = true;
    RetrievalPlan plan = PlanRetrieval(
        q, params_.s_max,
        [&](const TermKey& key) -> std::optional<ProbeOutcome> {
          const KeyEntry* e = contents_->Find(key);
          if (e == nullptr) return std::nullopt;
          if (e->postings.Contains(d)) doc_seen = true;
          if (e->is_hdk) all_truncated = false;
          return ProbeOutcome{e->is_hdk};
        });
    if (!plan.fetched.empty() && !all_truncated) {
      EXPECT_TRUE(doc_seen) << "doc " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelPropertyTest,
    ::testing::Combine(::testing::Values<Freq>(3, 8, 20),
                       ::testing::Values(4u, 8u, 16u),
                       ::testing::Values<uint64_t>(11, 97)),
    [](const auto& info) {
      return "df" + std::to_string(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace hdk::hdk
