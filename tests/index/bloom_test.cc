#include "index/bloom.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hdk::index {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bloom(4096, 4);
  for (DocId d = 0; d < 200; ++d) {
    bloom.Insert(d * 3);
  }
  for (DocId d = 0; d < 200; ++d) {
    EXPECT_TRUE(bloom.MayContain(d * 3)) << d;
  }
}

TEST(BloomFilterTest, MostlyRejectsAbsentDocs) {
  BloomFilter bloom = BloomFilter::ForItems(500, 0.01);
  for (DocId d = 0; d < 500; ++d) {
    bloom.Insert(d);
  }
  int false_positives = 0;
  for (DocId d = 10000; d < 20000; ++d) {
    if (bloom.MayContain(d)) ++false_positives;
  }
  // Target 1%; allow generous slack.
  EXPECT_LT(false_positives, 400);
}

TEST(BloomFilterTest, ForItemsSizesReasonably) {
  BloomFilter small = BloomFilter::ForItems(100, 0.01);
  BloomFilter large = BloomFilter::ForItems(10000, 0.01);
  EXPECT_GT(large.num_bits(), small.num_bits());
  // ~9.6 bits per item at 1% FP.
  EXPECT_NEAR(static_cast<double>(large.num_bits()) / 10000.0, 9.6, 2.0);
  EXPECT_GE(small.num_hashes(), 3u);
}

TEST(BloomFilterTest, SizeBytesMatchesBits) {
  BloomFilter bloom(1024, 3);
  EXPECT_EQ(bloom.SizeBytes(), 1024u / 8u);
  EXPECT_EQ(bloom.num_bits(), 1024u);
}

TEST(BloomFilterTest, RoundsUpTinyFilters) {
  BloomFilter bloom(1, 1);
  EXPECT_GE(bloom.num_bits(), 64u);
  bloom.Insert(7);
  EXPECT_TRUE(bloom.MayContain(7));
}

TEST(BloomFilterTest, InsertAllFromPostingList) {
  PostingList pl({{10, 1, 5}, {20, 1, 5}, {30, 1, 5}});
  BloomFilter bloom(2048, 4);
  bloom.InsertAll(pl);
  EXPECT_EQ(bloom.inserted(), 3u);
  EXPECT_TRUE(bloom.MayContain(10));
  EXPECT_TRUE(bloom.MayContain(20));
  EXPECT_TRUE(bloom.MayContain(30));
}

TEST(BloomFilterTest, IntersectKeepsMembers) {
  BloomFilter bloom(8192, 5);
  for (DocId d = 0; d < 100; ++d) {
    bloom.Insert(d * 2);  // even docs
  }
  std::vector<DocId> candidates;
  for (DocId d = 0; d < 200; ++d) candidates.push_back(d);
  auto kept = bloom.Intersect(candidates);
  // All 100 even members survive; some odd false positives may slip in.
  size_t members = 0;
  for (DocId d : kept) {
    if (d % 2 == 0 && d < 200) ++members;
  }
  EXPECT_EQ(members, 100u);
  EXPECT_LT(kept.size(), 140u);
}

TEST(BloomFilterTest, FpRateEstimateTracksFill) {
  BloomFilter bloom(1024, 4);
  EXPECT_NEAR(bloom.EstimatedFpRate(), 0.0, 1e-9);
  for (DocId d = 0; d < 2000; ++d) {
    bloom.Insert(d);
  }
  // Grossly overfilled: estimate approaches 1.
  EXPECT_GT(bloom.EstimatedFpRate(), 0.5);
}

TEST(BloomFilterTest, DeterministicAcrossInstances) {
  BloomFilter a(2048, 4), b(2048, 4);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    DocId d = static_cast<DocId>(rng.NextBounded(1 << 20));
    a.Insert(d);
    b.Insert(d);
  }
  Rng probe(4);
  for (int i = 0; i < 1000; ++i) {
    DocId d = static_cast<DocId>(probe.NextBounded(1 << 20));
    EXPECT_EQ(a.MayContain(d), b.MayContain(d));
  }
}

}  // namespace
}  // namespace hdk::index
