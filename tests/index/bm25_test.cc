#include "index/bm25.h"

#include <cmath>

#include <gtest/gtest.h>

namespace hdk::index {
namespace {

TEST(Bm25Test, IdfMatchesPlusOneFormula) {
  Bm25Scorer scorer(1000, 100.0);
  const double expected = std::log((1000.0 - 10 + 0.5) / (10 + 0.5) + 1.0);
  EXPECT_NEAR(scorer.Idf(10), expected, 1e-12);
}

TEST(Bm25Test, IdfAlwaysPositive) {
  Bm25Scorer scorer(100, 50.0);
  for (Freq df : {1ULL, 10ULL, 50ULL, 99ULL, 100ULL}) {
    EXPECT_GT(scorer.Idf(df), 0.0) << df;
  }
}

TEST(Bm25Test, IdfDecreasesWithDf) {
  Bm25Scorer scorer(10000, 100.0);
  EXPECT_GT(scorer.Idf(1), scorer.Idf(10));
  EXPECT_GT(scorer.Idf(10), scorer.Idf(100));
  EXPECT_GT(scorer.Idf(100), scorer.Idf(5000));
}

TEST(Bm25Test, ScoreHandComputed) {
  Bm25Params params;  // k1 = 1.2, b = 0.75
  Bm25Scorer scorer(1000, 100.0, params);
  const uint32_t tf = 3, doc_len = 120;
  const Freq df = 25;
  const double idf = std::log((1000.0 - 25 + 0.5) / (25 + 0.5) + 1.0);
  const double norm = 1.2 * (1.0 - 0.75 + 0.75 * 120.0 / 100.0);
  const double expected = idf * (3.0 * 2.2) / (3.0 + norm);
  EXPECT_NEAR(scorer.Score(tf, df, doc_len), expected, 1e-12);
}

TEST(Bm25Test, ZeroTfOrDfScoresZero) {
  Bm25Scorer scorer(1000, 100.0);
  EXPECT_EQ(scorer.Score(0, 10, 100), 0.0);
  EXPECT_EQ(scorer.Score(5, 0, 100), 0.0);
}

TEST(Bm25Test, ScoreIncreasesWithTf) {
  Bm25Scorer scorer(1000, 100.0);
  double prev = 0.0;
  for (uint32_t tf = 1; tf <= 16; tf *= 2) {
    double s = scorer.Score(tf, 10, 100);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(Bm25Test, TfSaturates) {
  // BM25's tf component saturates: doubling a large tf adds little.
  Bm25Scorer scorer(1000, 100.0);
  double d_small = scorer.Score(2, 10, 100) - scorer.Score(1, 10, 100);
  double d_large = scorer.Score(64, 10, 100) - scorer.Score(32, 10, 100);
  EXPECT_GT(d_small, d_large * 5);
}

TEST(Bm25Test, LongerDocumentsPenalized) {
  Bm25Scorer scorer(1000, 100.0);
  EXPECT_GT(scorer.Score(3, 10, 50), scorer.Score(3, 10, 200));
}

TEST(Bm25Test, NoLengthNormalizationWhenBZero) {
  Bm25Params params;
  params.b = 0.0;
  Bm25Scorer scorer(1000, 100.0, params);
  EXPECT_EQ(scorer.Score(3, 10, 50), scorer.Score(3, 10, 500));
}

TEST(Bm25Test, GuardsDegenerateAvgDl) {
  Bm25Scorer scorer(10, 0.0);  // avgdl clamped to 1
  EXPECT_GT(scorer.Score(1, 1, 1), 0.0);
}

}  // namespace
}  // namespace hdk::index
