#include "index/inverted_index.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace hdk::index {
namespace {

TEST(InvertedIndexTest, IndexesSingleDocument) {
  InvertedIndex idx;
  std::vector<TermId> tokens{1, 2, 1, 3};
  ASSERT_TRUE(idx.AddDocument(0, tokens).ok());
  EXPECT_EQ(idx.num_documents(), 1u);
  EXPECT_EQ(idx.total_tokens(), 4u);
  EXPECT_EQ(idx.DocumentFrequency(1), 1u);
  EXPECT_EQ(idx.CollectionFrequency(1), 2u);
  EXPECT_EQ(idx.Postings(1)[0].tf, 2u);
  EXPECT_EQ(idx.Postings(1)[0].doc_length, 4u);
}

TEST(InvertedIndexTest, UnknownTermHasEmptyList) {
  InvertedIndex idx;
  EXPECT_TRUE(idx.Postings(42).empty());
  EXPECT_EQ(idx.DocumentFrequency(42), 0u);
  EXPECT_EQ(idx.CollectionFrequency(42), 0u);
}

TEST(InvertedIndexTest, RejectsDuplicateDocumentForTerm) {
  InvertedIndex idx;
  std::vector<TermId> tokens{7};
  ASSERT_TRUE(idx.AddDocument(3, tokens).ok());
  EXPECT_EQ(idx.AddDocument(3, tokens).code(), StatusCode::kAlreadyExists);
}

TEST(InvertedIndexTest, AddRangeIndexesStore) {
  corpus::DocumentStore store;
  store.Add({1, 2});
  store.Add({2, 3});
  store.Add({3, 4});
  InvertedIndex idx;
  ASSERT_TRUE(idx.AddRange(store, 0, 3).ok());
  EXPECT_EQ(idx.num_documents(), 3u);
  EXPECT_EQ(idx.DocumentFrequency(2), 2u);
  EXPECT_EQ(idx.DocumentFrequency(3), 2u);
  EXPECT_EQ(idx.vocabulary_size(), 4u);
}

TEST(InvertedIndexTest, AddRangeSubset) {
  corpus::DocumentStore store;
  store.Add({1});
  store.Add({2});
  store.Add({3});
  InvertedIndex idx;
  ASSERT_TRUE(idx.AddRange(store, 1, 2).ok());
  EXPECT_EQ(idx.num_documents(), 1u);
  EXPECT_EQ(idx.DocumentFrequency(1), 0u);
  EXPECT_EQ(idx.DocumentFrequency(2), 1u);
}

TEST(InvertedIndexTest, AddRangeValidatesBounds) {
  corpus::DocumentStore store;
  store.Add({1});
  InvertedIndex idx;
  EXPECT_FALSE(idx.AddRange(store, 0, 5).ok());
  EXPECT_FALSE(idx.AddRange(store, 1, 0).ok());
}

TEST(InvertedIndexTest, TotalPostingsSumsListLengths) {
  corpus::DocumentStore store;
  store.Add({1, 2});
  store.Add({1, 3});
  InvertedIndex idx;
  ASSERT_TRUE(idx.AddRange(store, 0, 2).ok());
  // term1: 2 postings, term2: 1, term3: 1.
  EXPECT_EQ(idx.TotalPostings(), 4u);
}

TEST(InvertedIndexTest, AverageDocumentLength) {
  InvertedIndex idx;
  std::vector<TermId> d0{1, 2, 3, 4};
  std::vector<TermId> d1{5, 6};
  ASSERT_TRUE(idx.AddDocument(0, d0).ok());
  ASSERT_TRUE(idx.AddDocument(1, d1).ok());
  EXPECT_NEAR(idx.average_document_length(), 3.0, 1e-9);
}

TEST(InvertedIndexTest, TermsEnumeration) {
  InvertedIndex idx;
  std::vector<TermId> tokens{5, 9};
  ASSERT_TRUE(idx.AddDocument(0, tokens).ok());
  auto terms = idx.Terms();
  std::sort(terms.begin(), terms.end());
  EXPECT_EQ(terms, (std::vector<TermId>{5, 9}));
}

}  // namespace
}  // namespace hdk::index
