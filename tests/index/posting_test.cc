#include "index/posting.h"

#include <gtest/gtest.h>

namespace hdk::index {
namespace {

TEST(PostingListTest, ConstructorSortsAndDeduplicates) {
  PostingList pl({{3, 1, 10}, {1, 2, 20}, {3, 4, 10}, {2, 1, 30}});
  ASSERT_EQ(pl.size(), 3u);
  EXPECT_EQ(pl[0].doc, 1u);
  EXPECT_EQ(pl[1].doc, 2u);
  EXPECT_EQ(pl[2].doc, 3u);
  EXPECT_EQ(pl[2].tf, 5u);  // 1 + 4 accumulated
}

TEST(PostingListTest, UpsertInsertsSorted) {
  PostingList pl;
  pl.Upsert({5, 1, 10});
  pl.Upsert({2, 1, 20});
  pl.Upsert({9, 1, 30});
  ASSERT_EQ(pl.size(), 3u);
  EXPECT_EQ(pl[0].doc, 2u);
  EXPECT_EQ(pl[1].doc, 5u);
  EXPECT_EQ(pl[2].doc, 9u);
}

TEST(PostingListTest, UpsertAccumulatesTf) {
  PostingList pl;
  pl.Upsert({5, 2, 10});
  pl.Upsert({5, 3, 10});
  ASSERT_EQ(pl.size(), 1u);
  EXPECT_EQ(pl[0].tf, 5u);
}

TEST(PostingListTest, ContainsBinarySearches) {
  PostingList pl({{1, 1, 1}, {5, 1, 1}, {9, 1, 1}});
  EXPECT_TRUE(pl.Contains(1));
  EXPECT_TRUE(pl.Contains(5));
  EXPECT_TRUE(pl.Contains(9));
  EXPECT_FALSE(pl.Contains(0));
  EXPECT_FALSE(pl.Contains(4));
  EXPECT_FALSE(pl.Contains(10));
}

TEST(PostingListTest, MergeDisjoint) {
  PostingList a({{1, 1, 5}, {3, 1, 5}});
  PostingList b({{2, 1, 5}, {4, 1, 5}});
  a.Merge(b);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a.Documents(), (std::vector<DocId>{1, 2, 3, 4}));
}

TEST(PostingListTest, MergeOverlappingAccumulates) {
  PostingList a({{1, 2, 5}, {3, 1, 5}});
  PostingList b({{1, 3, 5}, {9, 1, 5}});
  a.Merge(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].doc, 1u);
  EXPECT_EQ(a[0].tf, 5u);
}

TEST(PostingListTest, MergeWithEmpty) {
  PostingList a({{1, 1, 5}});
  PostingList empty;
  a.Merge(empty);
  EXPECT_EQ(a.size(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.size(), 1u);
}

TEST(PostingListTest, TruncateKeepsHighestScores) {
  PostingList pl({{1, 1, 10}, {2, 5, 10}, {3, 3, 10}, {4, 9, 10}});
  pl.TruncateTopBy(2, [](const Posting& p) {
    return static_cast<double>(p.tf);
  });
  ASSERT_EQ(pl.size(), 2u);
  // Kept docs 4 (tf 9) and 2 (tf 5), restored to doc order.
  EXPECT_EQ(pl[0].doc, 2u);
  EXPECT_EQ(pl[1].doc, 4u);
}

TEST(PostingListTest, TruncateNoOpWhenSmall) {
  PostingList pl({{1, 1, 10}, {2, 2, 10}});
  pl.TruncateTopBy(5, [](const Posting& p) {
    return static_cast<double>(p.tf);
  });
  EXPECT_EQ(pl.size(), 2u);
}

TEST(PostingListTest, TruncateTieBreaksByLowerDoc) {
  PostingList pl({{10, 1, 5}, {20, 1, 5}, {30, 1, 5}});
  pl.TruncateTopBy(2, [](const Posting&) { return 1.0; });
  ASSERT_EQ(pl.size(), 2u);
  EXPECT_EQ(pl[0].doc, 10u);
  EXPECT_EQ(pl[1].doc, 20u);
}

TEST(PostingListTest, DocumentsExtraction) {
  PostingList pl({{4, 1, 1}, {2, 1, 1}});
  EXPECT_EQ(pl.Documents(), (std::vector<DocId>{2, 4}));
}

TEST(PostingListTest, EqualityIsStructural) {
  PostingList a({{1, 2, 3}});
  PostingList b({{1, 2, 3}});
  PostingList c({{1, 2, 4}});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(PostingListTest, MergeFromMatchesMerge) {
  PostingList reference({{1, 1, 5}, {3, 2, 5}});
  PostingList other({{2, 1, 5}, {3, 4, 5}});
  reference.Merge(other);

  PostingList moved_into({{1, 1, 5}, {3, 2, 5}});
  moved_into.MergeFrom(PostingList({{2, 1, 5}, {3, 4, 5}}));
  EXPECT_EQ(moved_into, reference);
}

TEST(PostingListTest, MergeFromStealsWhenEmpty) {
  PostingList target;
  target.MergeFrom(PostingList({{7, 1, 9}, {2, 3, 9}}));
  ASSERT_EQ(target.size(), 2u);
  EXPECT_EQ(target[0].doc, 2u);
  EXPECT_EQ(target[1].doc, 7u);
}

TEST(PostingListTest, MergeFromEmptyIsNoOp) {
  PostingList target({{1, 1, 5}});
  target.MergeFrom(PostingList());
  ASSERT_EQ(target.size(), 1u);
  EXPECT_EQ(target[0].doc, 1u);
}

}  // namespace
}  // namespace hdk::index
