#include "index/searcher.h"

#include <gtest/gtest.h>

namespace hdk::index {
namespace {

// Tiny collection:
//   doc 0: {1 1 2}       doc 1: {2 3}
//   doc 2: {1 3 3 3}     doc 3: {4}
class SearcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_.Add({1, 1, 2});
    store_.Add({2, 3});
    store_.Add({1, 3, 3, 3});
    store_.Add({4});
    ASSERT_TRUE(idx_.AddRange(store_, 0, 4).ok());
  }

  corpus::DocumentStore store_;
  InvertedIndex idx_;
};

TEST_F(SearcherTest, SingleTermQuery) {
  Bm25Searcher searcher(idx_);
  std::vector<TermId> q{1};
  auto results = searcher.Search(q, 10);
  ASSERT_EQ(results.size(), 2u);  // docs 0 and 2 contain term 1
  EXPECT_TRUE((results[0].doc == 0 && results[1].doc == 2) ||
              (results[0].doc == 2 && results[1].doc == 0));
}

TEST_F(SearcherTest, DisjunctiveSemantics) {
  Bm25Searcher searcher(idx_);
  std::vector<TermId> q{1, 4};
  auto results = searcher.Search(q, 10);
  // Docs containing term1 (0, 2) or term4 (3).
  ASSERT_EQ(results.size(), 3u);
}

TEST_F(SearcherTest, MoreMatchingTermsScoreHigher) {
  Bm25Searcher searcher(idx_);
  std::vector<TermId> q{2, 3};
  auto results = searcher.Search(q, 10);
  ASSERT_GE(results.size(), 1u);
  // Doc 1 contains both query terms; it should outrank single-term docs.
  EXPECT_EQ(results[0].doc, 1u);
}

TEST_F(SearcherTest, KLimitsResults) {
  Bm25Searcher searcher(idx_);
  std::vector<TermId> q{1, 2, 3, 4};
  EXPECT_EQ(searcher.Search(q, 2).size(), 2u);
}

TEST_F(SearcherTest, UnknownTermsYieldNothing) {
  Bm25Searcher searcher(idx_);
  std::vector<TermId> q{99};
  EXPECT_TRUE(searcher.Search(q, 10).empty());
}

TEST_F(SearcherTest, DuplicateQueryTermsCountOnce) {
  Bm25Searcher searcher(idx_);
  std::vector<TermId> q1{1};
  std::vector<TermId> q2{1, 1, 1};
  auto r1 = searcher.Search(q1, 10);
  auto r2 = searcher.Search(q2, 10);
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].doc, r2[i].doc);
    EXPECT_NEAR(r1[i].score, r2[i].score, 1e-12);
  }
}

TEST_F(SearcherTest, RetrievalPostingsSumsDfs) {
  Bm25Searcher searcher(idx_);
  std::vector<TermId> q{1, 3};
  // df(1) = 2, df(3) = 2.
  EXPECT_EQ(searcher.RetrievalPostings(q), 4u);
  std::vector<TermId> dup{1, 1, 3};
  EXPECT_EQ(searcher.RetrievalPostings(dup), 4u);
}

TEST_F(SearcherTest, DeterministicRanking) {
  Bm25Searcher searcher(idx_);
  std::vector<TermId> q{1, 2, 3};
  auto a = searcher.Search(q, 10);
  auto b = searcher.Search(q, 10);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace hdk::index
