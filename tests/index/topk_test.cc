#include "index/topk.h"

#include <gtest/gtest.h>

namespace hdk::index {
namespace {

TEST(TopKTest, CollectsBestK) {
  TopK topk(3);
  for (DocId d = 0; d < 10; ++d) {
    topk.Offer({d, static_cast<double>(d)});
  }
  auto out = topk.Take();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].doc, 9u);
  EXPECT_EQ(out[1].doc, 8u);
  EXPECT_EQ(out[2].doc, 7u);
}

TEST(TopKTest, FewerThanKCandidates) {
  TopK topk(5);
  topk.Offer({1, 2.0});
  topk.Offer({2, 1.0});
  auto out = topk.Take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].doc, 1u);
}

TEST(TopKTest, ZeroK) {
  TopK topk(0);
  topk.Offer({1, 1.0});
  EXPECT_TRUE(topk.Take().empty());
}

TEST(TopKTest, TieBreaksByLowerDocId) {
  TopK topk(2);
  topk.Offer({30, 1.0});
  topk.Offer({10, 1.0});
  topk.Offer({20, 1.0});
  auto out = topk.Take();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].doc, 10u);
  EXPECT_EQ(out[1].doc, 20u);
}

TEST(TopKTest, OrderIndependentResult) {
  std::vector<ScoredDoc> docs;
  for (DocId d = 0; d < 50; ++d) {
    docs.push_back({d, static_cast<double>((d * 7919) % 23)});
  }
  TopK forward(10), backward(10);
  for (const auto& d : docs) forward.Offer(d);
  for (auto it = docs.rbegin(); it != docs.rend(); ++it) {
    backward.Offer(*it);
  }
  EXPECT_EQ(forward.Take(), backward.Take());
}

TEST(TopKTest, BetterResultOrdering) {
  EXPECT_TRUE(BetterResult({1, 2.0}, {2, 1.0}));
  EXPECT_FALSE(BetterResult({2, 1.0}, {1, 2.0}));
  EXPECT_TRUE(BetterResult({1, 1.0}, {2, 1.0}));   // tie: lower doc wins
  EXPECT_FALSE(BetterResult({2, 1.0}, {1, 1.0}));
}

TEST(TopKTest, ResultsSortedBestFirst) {
  TopK topk(20);
  for (DocId d = 0; d < 100; ++d) {
    topk.Offer({d, static_cast<double>((d * 31) % 17)});
  }
  auto out = topk.Take();
  ASSERT_EQ(out.size(), 20u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_TRUE(BetterResult(out[i - 1], out[i]) ||
                out[i - 1] == out[i]);
  }
}

}  // namespace
}  // namespace hdk::index
