// End-to-end reproduction smoke test: builds the full pipeline at a tiny
// scale and asserts the paper's three headline claims hold qualitatively:
//   (1) HDK retrieval traffic per query is far below the ST baseline and
//       bounded (Figure 6);
//   (2) HDK indexing costs more than ST indexing (Figures 3/4) but by a
//       bounded factor;
//   (3) HDK top-20 results overlap substantially with centralized BM25
//       (Figure 7).
#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "engine/centralized.h"
#include "engine/experiment.h"
#include "engine/overlap.h"

namespace hdk::engine {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    setup_ = new ExperimentSetup(ExperimentSetup::Tiny());
    ctx_ = new ExperimentContext(*setup_);
    auto point = BuildEnginesAtPoint(*ctx_, setup_->max_peers);
    ASSERT_TRUE(point.ok()) << point.status().ToString();
    point_ = new EnginesAtPoint(std::move(point).value());
    queries_ = new std::vector<corpus::Query>(
        ctx_->MakeQueries(point_->num_docs, setup_->num_queries));
    ASSERT_GT(queries_->size(), 20u);

    auto centralized =
        CentralizedBm25Engine::Build(ctx_->GrowTo(point_->num_docs));
    ASSERT_TRUE(centralized.ok());
    centralized_ = centralized->release();
  }

  static void TearDownTestSuite() {
    delete centralized_;
    delete queries_;
    delete point_;
    delete ctx_;
    delete setup_;
  }

  static ExperimentSetup* setup_;
  static ExperimentContext* ctx_;
  static EnginesAtPoint* point_;
  static std::vector<corpus::Query>* queries_;
  static CentralizedBm25Engine* centralized_;
};

ExperimentSetup* EndToEndTest::setup_ = nullptr;
ExperimentContext* EndToEndTest::ctx_ = nullptr;
EnginesAtPoint* EndToEndTest::point_ = nullptr;
std::vector<corpus::Query>* EndToEndTest::queries_ = nullptr;
CentralizedBm25Engine* EndToEndTest::centralized_ = nullptr;

TEST_F(EndToEndTest, HdkRetrievalTrafficFarBelowSingleTerm) {
  double hdk_postings = 0, st_postings = 0;
  for (const auto& q : *queries_) {
    hdk_postings += static_cast<double>(
        point_->hdk_low->Search(q.terms, 20).cost.postings_fetched);
    st_postings += static_cast<double>(
        point_->st->Search(q.terms, 20).cost.postings_fetched);
  }
  hdk_postings /= static_cast<double>(queries_->size());
  st_postings /= static_cast<double>(queries_->size());
  // Figure 6: an "enormous reduction" — require at least 2x at tiny scale
  // (the gap grows with collection size).
  EXPECT_LT(hdk_postings * 2.0, st_postings)
      << "HDK " << hdk_postings << " vs ST " << st_postings;
}

TEST_F(EndToEndTest, HdkIndexingCostsMoreButBounded) {
  const double hdk = point_->hdk_low->InsertedPostingsPerPeer();
  const double st = point_->st->InsertedPostingsPerPeer();
  EXPECT_GT(hdk, st);          // Figure 4: HDK inserts more
  EXPECT_LT(hdk, st * 100.0);  // paper bound: at most ~40x at web scale
}

TEST_F(EndToEndTest, HigherDfMaxStoresMorePostingsPerNdk) {
  // DFmax=high keeps longer NDK lists but fewer multi-term keys; the
  // paper's trade-off must be visible in stored postings accounting.
  const auto& low = point_->hdk_low->global_index();
  const auto& high = point_->hdk_high->global_index();
  EXPECT_GE(low.TotalKeys(), high.TotalKeys());
}

TEST_F(EndToEndTest, OverlapWithCentralizedBm25IsSubstantial) {
  std::vector<std::vector<index::ScoredDoc>> hdk_results, bm25_results;
  for (const auto& q : *queries_) {
    hdk_results.push_back(
        point_->hdk_high->Search(q.terms, 20).results);
    bm25_results.push_back(centralized_->Rank(q.terms, 20));
  }
  double overlap = MeanTopKOverlap(hdk_results, bm25_results, 20);
  // Figure 7 reports 60-90% on Wikipedia; the tiny synthetic collection
  // with truncated NDKs should still clear a solid floor.
  EXPECT_GT(overlap, 0.3) << "mean top-20 overlap " << overlap;
}

TEST_F(EndToEndTest, HigherDfMaxImprovesOverlap) {
  std::vector<std::vector<index::ScoredDoc>> low_r, high_r, bm25_r;
  for (const auto& q : *queries_) {
    low_r.push_back(point_->hdk_low->Search(q.terms, 20).results);
    high_r.push_back(point_->hdk_high->Search(q.terms, 20).results);
    bm25_r.push_back(centralized_->Rank(q.terms, 20));
  }
  double low = MeanTopKOverlap(low_r, bm25_r, 20);
  double high = MeanTopKOverlap(high_r, bm25_r, 20);
  // Paper: "retrieval performance is similar to single-term indexing for
  // larger values of DFmax" — higher DFmax mimics BM25 better (allow a
  // small tolerance for noise at tiny scale).
  EXPECT_GE(high, low - 0.05);
}

TEST_F(EndToEndTest, RetrievalTrafficRespectsTheoreticalBound) {
  for (size_t i = 0; i < 20 && i < queries_->size(); ++i) {
    const auto& q = (*queries_)[i];
    auto exec = point_->hdk_low->Search(q.terms, 20);
    uint64_t nk = 0;
    {
      uint32_t qs = static_cast<uint32_t>(q.terms.size());
      uint32_t limit = std::min(qs, 3u);
      for (uint32_t s = 1; s <= limit; ++s) {
        uint64_t c = 1;
        for (uint32_t j = 1; j <= s; ++j) c = c * (qs - j + 1) / j;
        nk += c;
      }
    }
    EXPECT_LE(exec.cost.postings_fetched,
              nk * point_->hdk_low->config().hdk.df_max);
  }
}

}  // namespace
}  // namespace hdk::engine
