// Per-peer circuit breakers (net/breaker.h): failure trip threshold, the
// deterministic decision-counted half-open cadence, probe accounting,
// the latency-EWMA tail trip, departure renumbering, and the disabled
// bank's never-short-circuits contract.
#include <cstdint>

#include <gtest/gtest.h>

#include "net/breaker.h"

namespace hdk::net {
namespace {

using State = CircuitBreakerBank::State;

BreakerConfig EnabledConfig() {
  BreakerConfig config;
  config.enabled = true;
  config.failure_threshold = 3;
  config.open_cooldown = 4;
  config.half_open_successes = 2;
  return config;
}

TEST(BreakerTest, DisabledBankNeverShortCircuits) {
  CircuitBreakerBank bank;  // default config: disabled
  EXPECT_FALSE(bank.enabled());
  for (int i = 0; i < 20; ++i) {
    bank.OnFailure(1);
    EXPECT_FALSE(bank.ShouldShortCircuit(1));
  }
  EXPECT_EQ(bank.state(1), State::kClosed);
  EXPECT_EQ(bank.short_circuits(), 0u);
  // Disabled success feeding keeps no EWMA either.
  bank.OnSuccess(1, 100);
  EXPECT_EQ(bank.latency_ewma(1), 0.0);
}

TEST(BreakerTest, TripsAfterConsecutiveFailures) {
  CircuitBreakerBank bank(EnabledConfig());
  bank.OnFailure(2);
  bank.OnFailure(2);
  EXPECT_EQ(bank.state(2), State::kClosed);
  // A success resets the streak: two more failures stay below threshold.
  bank.OnSuccess(2, 1);
  bank.OnFailure(2);
  bank.OnFailure(2);
  EXPECT_EQ(bank.state(2), State::kClosed);
  bank.OnFailure(2);
  EXPECT_EQ(bank.state(2), State::kOpen);
  // Other peers' breakers are independent.
  EXPECT_EQ(bank.state(0), State::kClosed);
  EXPECT_FALSE(bank.ShouldShortCircuit(0));
}

TEST(BreakerTest, OpenCadenceAdmitsEveryNthDecisionAsProbe) {
  CircuitBreakerBank bank(EnabledConfig());  // open_cooldown = 4
  for (int i = 0; i < 3; ++i) bank.OnFailure(1);
  ASSERT_EQ(bank.state(1), State::kOpen);

  // Decisions 1..3 short-circuit; decision 4 admits the half-open probe.
  EXPECT_TRUE(bank.ShouldShortCircuit(1));
  EXPECT_TRUE(bank.ShouldShortCircuit(1));
  EXPECT_TRUE(bank.ShouldShortCircuit(1));
  EXPECT_FALSE(bank.ShouldShortCircuit(1));
  EXPECT_EQ(bank.state(1), State::kHalfOpen);
  EXPECT_EQ(bank.short_circuits(), 3u);

  // A failed probe re-opens and the cadence restarts from zero.
  bank.OnFailure(1);
  EXPECT_EQ(bank.state(1), State::kOpen);
  EXPECT_TRUE(bank.ShouldShortCircuit(1));
  EXPECT_TRUE(bank.ShouldShortCircuit(1));
  EXPECT_TRUE(bank.ShouldShortCircuit(1));
  EXPECT_FALSE(bank.ShouldShortCircuit(1));
  EXPECT_EQ(bank.state(1), State::kHalfOpen);
  EXPECT_EQ(bank.short_circuits(), 6u);
}

TEST(BreakerTest, HalfOpenClosesAfterConsecutiveProbeSuccesses) {
  CircuitBreakerBank bank(EnabledConfig());  // half_open_successes = 2
  for (int i = 0; i < 3; ++i) bank.OnFailure(0);
  for (int i = 0; i < 4; ++i) bank.ShouldShortCircuit(0);
  ASSERT_EQ(bank.state(0), State::kHalfOpen);

  bank.OnSuccess(0, 1);
  EXPECT_EQ(bank.state(0), State::kHalfOpen);  // one of two
  bank.OnSuccess(0, 1);
  EXPECT_EQ(bank.state(0), State::kClosed);
  // Closed again: traffic flows and the failure streak starts fresh.
  EXPECT_FALSE(bank.ShouldShortCircuit(0));
  bank.OnFailure(0);
  bank.OnFailure(0);
  EXPECT_EQ(bank.state(0), State::kClosed);
}

TEST(BreakerTest, LatencyEwmaTripsSlowButAlivePeer) {
  BreakerConfig config = EnabledConfig();
  config.latency_trip_ticks = 10.0;
  config.latency_ewma_alpha = 0.5;
  CircuitBreakerBank bank(config);

  // Fast peer: EWMA stays below the bound, breaker stays closed.
  bank.OnSuccess(0, 4);
  bank.OnSuccess(0, 6);
  EXPECT_EQ(bank.state(0), State::kClosed);
  EXPECT_NEAR(bank.latency_ewma(0), 5.0, 1e-9);

  // Slow-but-alive peer: the first sample seeds the EWMA above the bound
  // and trips immediately, without a single failure.
  bank.OnSuccess(1, 40);
  EXPECT_EQ(bank.state(1), State::kOpen);
  EXPECT_TRUE(bank.ShouldShortCircuit(1));
}

TEST(BreakerTest, EwmaSurvivesReopenSoRevivedSlowPeerRetrips) {
  BreakerConfig config = EnabledConfig();
  config.latency_trip_ticks = 10.0;
  config.latency_ewma_alpha = 0.2;
  config.half_open_successes = 1;
  CircuitBreakerBank bank(config);

  bank.OnSuccess(0, 100);  // trips: ewma = 100
  ASSERT_EQ(bank.state(0), State::kOpen);
  for (int i = 0; i < 4; ++i) bank.ShouldShortCircuit(0);
  ASSERT_EQ(bank.state(0), State::kHalfOpen);

  // The probe succeeds fast — the breaker closes — but the decayed EWMA
  // (0.2*2 + 0.8*100 = 80.4) is still over the bound: it re-trips on the
  // very same success instead of absorbing a window of slow traffic.
  bank.OnSuccess(0, 2);
  EXPECT_EQ(bank.state(0), State::kOpen);
  EXPECT_NEAR(bank.latency_ewma(0), 80.4, 1e-9);

  // Repeated probe rounds eventually decay the EWMA under the bound and
  // the breaker genuinely closes.
  for (int round = 0; round < 64 && bank.state(0) != State::kClosed;
       ++round) {
    for (int i = 0; i < 4; ++i) bank.ShouldShortCircuit(0);
    bank.OnSuccess(0, 2);
  }
  EXPECT_EQ(bank.state(0), State::kClosed);
  EXPECT_LT(bank.latency_ewma(0), 10.0);
}

TEST(BreakerTest, OnPeerRemovedRenumbersLikeTheOverlay) {
  CircuitBreakerBank bank(EnabledConfig());
  bank.EnsurePeers(4);
  for (int i = 0; i < 3; ++i) bank.OnFailure(2);
  ASSERT_EQ(bank.state(2), State::kOpen);

  bank.OnPeerRemoved(1);  // 2 renumbers to 1
  EXPECT_EQ(bank.state(1), State::kOpen);
  EXPECT_EQ(bank.state(2), State::kClosed);

  bank.OnPeerRemoved(1);  // the tripped peer itself departs
  EXPECT_EQ(bank.state(1), State::kClosed);
}

TEST(BreakerTest, ConfigureResetsEveryBreaker) {
  CircuitBreakerBank bank(EnabledConfig());
  for (int i = 0; i < 3; ++i) bank.OnFailure(0);
  bank.ShouldShortCircuit(0);
  ASSERT_GT(bank.short_circuits(), 0u);

  bank.Configure(BreakerConfig{});  // back to the disabled default
  EXPECT_FALSE(bank.enabled());
  EXPECT_EQ(bank.state(0), State::kClosed);
  EXPECT_EQ(bank.short_circuits(), 0u);
  EXPECT_FALSE(bank.ShouldShortCircuit(0));
}

}  // namespace
}  // namespace hdk::net
