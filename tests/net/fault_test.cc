// The deterministic fault-injection transport (net/fault.h): FaultPlan
// spec grammar, pure-hash loss/latency decisions (bit-reproducible at any
// thread count), hard peer deaths (explicit, scripted, renumbered on
// departure), the PeerHealth strain tracker, and the three Channel send
// modes. Contract: an INACTIVE injector records exactly one message per
// send — byte-identical traffic to the pre-fault engine.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/fault.h"
#include "net/traffic.h"

namespace hdk::net {
namespace {

TEST(FaultPlanTest, EmptySpecIsInert) {
  auto plan = FaultPlan::Parse("");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->active());
  EXPECT_EQ(plan->seed, 0u);
  EXPECT_EQ(plan->loss, 0.0);
  EXPECT_EQ(plan->max_latency_ticks, 0u);
  EXPECT_TRUE(plan->deaths.empty());
}

TEST(FaultPlanTest, FullSpecParsesAndRoundTrips) {
  auto plan = FaultPlan::Parse(
      " seed=7, loss=0.01, loss.KeyProbe=0.05, latency=3, kill=2@100 ");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->active());
  EXPECT_EQ(plan->seed, 7u);
  EXPECT_DOUBLE_EQ(plan->loss, 0.01);
  EXPECT_DOUBLE_EQ(plan->LossFor(MessageKind::kKeyProbe), 0.05);
  // Kinds without an override inherit the global probability.
  EXPECT_DOUBLE_EQ(plan->LossFor(MessageKind::kInsertPostings), 0.01);
  EXPECT_EQ(plan->max_latency_ticks, 3u);
  ASSERT_EQ(plan->deaths.size(), 1u);
  EXPECT_EQ(plan->deaths[0].peer, 2u);
  EXPECT_EQ(plan->deaths[0].after_messages, 100u);

  auto reparsed = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.ok()) << plan->ToString();
  EXPECT_EQ(*reparsed, *plan);
}

TEST(FaultPlanTest, SyncKindOverridesParseAndRoundTrip) {
  // The replica-maintenance and anti-entropy message kinds are first-
  // class grammar citizens: scripting their loss is how the sync tests
  // manufacture divergence.
  auto plan = FaultPlan::Parse(
      "loss.ReplicaPush=0.4,loss.ReplicaForget=0.9,loss.SyncStrata=0.1,"
      "loss.SyncIbf=0.1,loss.SyncDelta=0.1,loss.SyncFull=0.1");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->active());
  EXPECT_DOUBLE_EQ(plan->LossFor(MessageKind::kReplicaPush), 0.4);
  EXPECT_DOUBLE_EQ(plan->LossFor(MessageKind::kReplicaForget), 0.9);
  EXPECT_DOUBLE_EQ(plan->LossFor(MessageKind::kSyncStrata), 0.1);
  EXPECT_DOUBLE_EQ(plan->LossFor(MessageKind::kSyncIbf), 0.1);
  EXPECT_DOUBLE_EQ(plan->LossFor(MessageKind::kSyncDelta), 0.1);
  EXPECT_DOUBLE_EQ(plan->LossFor(MessageKind::kSyncFull), 0.1);
  // Query/indexing kinds stay on the (zero) global default.
  EXPECT_DOUBLE_EQ(plan->LossFor(MessageKind::kKeyProbe), 0.0);

  auto reparsed = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.ok()) << plan->ToString();
  EXPECT_EQ(*reparsed, *plan);
}

TEST(FaultPlanTest, LatencyOverridesParseAndRoundTrip) {
  // Per-kind and per-peer latency shaping: query probes crawl a little
  // everywhere, peer 3 is a straggler for EVERY kind addressed to it.
  auto plan = FaultPlan::Parse(
      "seed=9,latency=2,latency.KeyProbe=5,latency.PostingsResponse=7,"
      "latency@3=64,latency@1=0");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->active());
  // Precedence: per-peer destination beats per-kind beats global.
  EXPECT_EQ(plan->MaxLatencyFor(MessageKind::kKeyProbe, 3), 64u);
  EXPECT_EQ(plan->MaxLatencyFor(MessageKind::kKeyProbe, 2), 5u);
  EXPECT_EQ(plan->MaxLatencyFor(MessageKind::kPostingsResponse, 2), 7u);
  EXPECT_EQ(plan->MaxLatencyFor(MessageKind::kInsertPostings, 2), 2u);
  // An explicit latency@peer=0 pins that destination to zero ticks even
  // when kind/global overrides exist.
  EXPECT_EQ(plan->MaxLatencyFor(MessageKind::kKeyProbe, 1), 0u);

  auto reparsed = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(reparsed.ok()) << plan->ToString();
  EXPECT_EQ(*reparsed, *plan);
}

TEST(FaultPlanTest, KindLatencyAloneActivatesThePlan) {
  // A plan that ONLY shapes latency of one kind must count as active —
  // otherwise the injector would skip its draws entirely.
  auto plan = FaultPlan::Parse("latency.KeyProbe=4");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->active());
  EXPECT_EQ(plan->max_latency_ticks, 0u);

  auto peer_only = FaultPlan::Parse("latency@2=6");
  ASSERT_TRUE(peer_only.ok());
  EXPECT_TRUE(peer_only->active());

  // Zero-tick overrides alone stay inert.
  auto zeros = FaultPlan::Parse("latency.KeyProbe=0,latency@2=0");
  ASSERT_TRUE(zeros.ok());
  EXPECT_FALSE(zeros->active());
}

TEST(FaultPlanTest, PeerLatencyLastWriteWinsAndRenumbers) {
  auto plan = FaultPlan::Parse("latency@4=8,latency@4=16,latency@6=32");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->peer_latency.size(), 2u);
  EXPECT_EQ(plan->MaxLatencyFor(MessageKind::kKeyProbe, 4), 16u);

  // Departures renumber per-peer latency ids exactly like deaths.
  FaultInjector injector;
  injector.Install(*plan);
  injector.OnPeerRemoved(5);  // 6 renumbers to 5
  EXPECT_EQ(injector.plan().MaxLatencyFor(MessageKind::kKeyProbe, 5), 32u);
  injector.OnPeerRemoved(4);  // the overridden peer itself departs
  // Its entry is dropped and the straggler renumbers once more.
  EXPECT_EQ(injector.plan().MaxLatencyFor(MessageKind::kKeyProbe, 4), 32u);
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::Parse("seed").ok());          // no '='
  EXPECT_FALSE(FaultPlan::Parse("seed=banana").ok());
  EXPECT_FALSE(FaultPlan::Parse("loss=1.0").ok());      // must be < 1
  EXPECT_FALSE(FaultPlan::Parse("loss=-0.1").ok());
  EXPECT_FALSE(FaultPlan::Parse("loss=nope").ok());
  EXPECT_FALSE(FaultPlan::Parse("loss.WarpDrive=0.1").ok());
  EXPECT_FALSE(FaultPlan::Parse("latency=99999999999999").ok());
  EXPECT_FALSE(FaultPlan::Parse("kill=2").ok());        // wants X@N
  EXPECT_FALSE(FaultPlan::Parse("kill=@5").ok());
  EXPECT_FALSE(FaultPlan::Parse("warp=1").ok());        // unknown key
  EXPECT_FALSE(FaultPlan::Parse("latency.WarpDrive=3").ok());
  EXPECT_FALSE(FaultPlan::Parse("latency.KeyProbe=oops").ok());
  EXPECT_FALSE(FaultPlan::Parse("latency@=3").ok());    // wants a peer id
  EXPECT_FALSE(FaultPlan::Parse("latency@2=banana").ok());
  EXPECT_FALSE(FaultPlan::Parse("latency@2=99999999999999").ok());
  // Valid per-kind probabilities for every kind name.
  for (size_t k = 0; k < kNumMessageKinds; ++k) {
    const std::string spec =
        "loss." +
        std::string(MessageKindName(static_cast<MessageKind>(k))) + "=0.5";
    EXPECT_TRUE(FaultPlan::Parse(spec).ok()) << spec;
  }
}

TEST(FaultInjectorTest, DecisionsArePureHashes) {
  FaultPlan plan;
  plan.seed = 42;
  plan.loss = 0.3;
  plan.max_latency_ticks = 5;

  FaultInjector a, b;
  a.Install(plan);
  b.Install(plan);
  ASSERT_TRUE(a.active());

  // Identical (kind, src, dst, salt, attempt) -> identical decisions on
  // repeated calls AND across injector instances: there is no hidden RNG
  // stream, so any thread interleaving sees the same schedule.
  bool saw_lost = false, saw_delivered = false;
  for (uint64_t salt = 0; salt < 200; ++salt) {
    const bool lost =
        a.Lost(MessageKind::kKeyProbe, 1, 2, salt, /*attempt=*/0);
    EXPECT_EQ(lost, a.Lost(MessageKind::kKeyProbe, 1, 2, salt, 0));
    EXPECT_EQ(lost, b.Lost(MessageKind::kKeyProbe, 1, 2, salt, 0));
    EXPECT_EQ(a.LatencyTicks(MessageKind::kKeyProbe, 1, 2, salt, 0),
              b.LatencyTicks(MessageKind::kKeyProbe, 1, 2, salt, 0));
    EXPECT_LE(a.LatencyTicks(MessageKind::kKeyProbe, 1, 2, salt, 0), 5u);
    saw_lost |= lost;
    saw_delivered |= !lost;
  }
  EXPECT_TRUE(saw_lost);
  EXPECT_TRUE(saw_delivered);

  // A different seed yields a different schedule somewhere.
  FaultPlan other = plan;
  other.seed = 43;
  FaultInjector c;
  c.Install(other);
  bool differs = false;
  for (uint64_t salt = 0; salt < 200 && !differs; ++salt) {
    differs = a.Lost(MessageKind::kKeyProbe, 1, 2, salt, 0) !=
              c.Lost(MessageKind::kKeyProbe, 1, 2, salt, 0);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjectorTest, LossRateTracksProbability) {
  FaultPlan plan;
  plan.seed = 9;
  plan.loss = 0.2;
  FaultInjector injector;
  injector.Install(plan);

  uint64_t lost = 0;
  const uint64_t samples = 20000;
  for (uint64_t salt = 0; salt < samples; ++salt) {
    lost += injector.Lost(MessageKind::kInsertPostings, 3, 4, salt, 0);
  }
  const double rate = static_cast<double>(lost) / samples;
  EXPECT_NEAR(rate, 0.2, 0.02);
}

TEST(FaultInjectorTest, KillReviveAndScriptedDeaths) {
  FaultInjector injector;
  EXPECT_FALSE(injector.active());
  EXPECT_FALSE(injector.PeerDead(3));

  injector.KillPeer(3);
  EXPECT_TRUE(injector.active());
  EXPECT_TRUE(injector.PeerDead(3));
  EXPECT_FALSE(injector.PeerDead(2));
  injector.RevivePeer(3);
  EXPECT_FALSE(injector.PeerDead(3));

  // kill=1@3: peer 1 dies after receiving its third message; kill=0@0
  // is dead from the start.
  auto plan = FaultPlan::Parse("kill=1@3,kill=0@0");
  ASSERT_TRUE(plan.ok());
  FaultInjector scripted;
  scripted.Install(*plan);
  EXPECT_TRUE(scripted.PeerDead(0));
  EXPECT_FALSE(scripted.PeerDead(1));
  scripted.CountMessageTo(1);
  scripted.CountMessageTo(1);
  EXPECT_FALSE(scripted.PeerDead(1));
  scripted.CountMessageTo(1);
  EXPECT_TRUE(scripted.PeerDead(1));
}

TEST(FaultInjectorTest, OnPeerRemovedRenumbers) {
  FaultInjector injector;
  auto plan = FaultPlan::Parse("kill=5@10");
  ASSERT_TRUE(plan.ok());
  injector.Install(*plan);
  injector.KillPeer(3);

  // Peer 1 departs through the membership protocol: ids above 1 shift
  // down — dead peer 3 becomes 2, the scripted death of 5 becomes 4.
  injector.OnPeerRemoved(1);
  EXPECT_TRUE(injector.PeerDead(2));
  EXPECT_FALSE(injector.PeerDead(3));
  ASSERT_EQ(injector.plan().deaths.size(), 1u);
  EXPECT_EQ(injector.plan().deaths[0].peer, 4u);

  // Removing the scripted peer itself drops the entry.
  injector.OnPeerRemoved(4);
  EXPECT_TRUE(injector.plan().deaths.empty());
}

TEST(PeerHealthTest, StrainAndSuspects) {
  PeerHealth health(/*suspect_threshold=*/2);
  EXPECT_EQ(health.strain(7), 0u);
  EXPECT_FALSE(health.Suspect(7));

  health.RecordFailure(7);
  EXPECT_EQ(health.strain(7), 1u);
  EXPECT_FALSE(health.Suspect(7));
  health.RecordFailure(7);
  EXPECT_TRUE(health.Suspect(7));
  EXPECT_EQ(health.Suspects(), std::vector<PeerId>{7});

  // One success clears the streak — strain counts CONSECUTIVE failures.
  health.RecordSuccess(7);
  EXPECT_EQ(health.strain(7), 0u);
  EXPECT_FALSE(health.Suspect(7));

  health.RecordFailure(2);
  health.RecordFailure(2);
  health.RecordFailure(4);
  health.RecordFailure(4);
  health.OnPeerRemoved(3);  // 4 renumbers to 3
  EXPECT_EQ(health.Suspects(), (std::vector<PeerId>{2, 3}));
}

TEST(ChannelTest, InactiveInjectorRecordsExactlyOneMessage) {
  TrafficRecorder traffic;
  traffic.EnsurePeers(4);

  // All three modes, with and without an (inactive) injector bundle.
  FaultInjector injector;
  PeerHealth health;
  for (const Resilience& res :
       {Resilience{}, Resilience{&injector, &health, nullptr, {}, 1, {}}}) {
    TrafficRecorder fresh;
    fresh.EnsurePeers(4);
    Channel channel(&fresh, res);
    auto s1 = channel.Send(0, 1, MessageKind::kKeyProbe, 5, 2, 99);
    auto s2 = channel.SendReliable(1, 2, MessageKind::kPostingsResponse,
                                   7, 1, 99);
    auto s3 = channel.SendAssured(2, 3, MessageKind::kInsertPostings, 9,
                                  3, 99);
    EXPECT_TRUE(s1.delivered);
    EXPECT_TRUE(s2.delivered);
    EXPECT_TRUE(s3.delivered);
    EXPECT_EQ(s1.retries + s2.retries + s3.retries, 0u);
    EXPECT_EQ(s1.latency_ticks + s2.latency_ticks + s3.latency_ticks, 0u);
    EXPECT_EQ(fresh.total().messages, 3u);
    EXPECT_EQ(fresh.total().postings, 21u);
    EXPECT_EQ(fresh.total().hops, 6u);
  }
}

TEST(ChannelTest, SendReliableRetriesThenFailsOverOrDegrades) {
  TrafficRecorder traffic;
  traffic.EnsurePeers(4);
  FaultInjector injector;
  PeerHealth health;
  Resilience res{&injector, &health, nullptr, RetryPolicy{4, 1}, 1, {}};
  Channel channel(&traffic, res);

  // A hard-dead destination: the first attempt is recorded (bandwidth is
  // consumed), further retries are pointless and skipped, health notes
  // the failure.
  injector.KillPeer(2);
  auto dead = channel.SendReliable(0, 2, MessageKind::kKeyProbe, 0, 2, 1);
  EXPECT_FALSE(dead.delivered);
  EXPECT_EQ(traffic.total().messages, 1u);
  EXPECT_EQ(health.strain(2), 1u);

  // Heavy loss against a LIVE peer: across many logical messages every
  // one is eventually delivered or exhausts exactly max_attempts
  // records; retried sends surface their extra attempts.
  injector.RevivePeer(2);
  FaultPlan plan;
  plan.seed = 5;
  plan.loss = 0.5;
  injector.Install(plan);
  uint64_t retried = 0, exhausted = 0;
  const uint64_t before = traffic.total().messages;
  uint64_t expected_records = 0;
  for (uint64_t salt = 0; salt < 300; ++salt) {
    auto out = channel.SendReliable(0, 2, MessageKind::kKeyProbe, 0, 2,
                                    salt);
    expected_records += 1 + out.retries;
    retried += out.retries > 0;
    exhausted += !out.delivered;
    if (!out.delivered) {
      EXPECT_EQ(out.retries, 3u);
    }
    if (out.retries > 0) {
      EXPECT_GT(out.latency_ticks, 0u);
    }
  }
  EXPECT_GT(retried, 0u);
  EXPECT_GT(exhausted, 0u);  // p^4 ~ 6% of 300
  EXPECT_EQ(traffic.total().messages - before, expected_records);
}

TEST(ChannelTest, SendAssuredChargesDeadPeersOneAttempt) {
  TrafficRecorder traffic;
  traffic.EnsurePeers(4);
  FaultInjector injector;
  Resilience res{&injector, nullptr, nullptr, RetryPolicy{3, 1}, 1, {}};
  Channel channel(&traffic, res);

  injector.KillPeer(1);
  auto dead = channel.SendAssured(0, 1, MessageKind::kInsertPostings, 10,
                                  2, 7);
  EXPECT_FALSE(dead.delivered);
  EXPECT_EQ(dead.retries, 0u);
  EXPECT_EQ(traffic.total().messages, 1u);

  // Against a live peer under heavy loss, at most max_attempts records
  // are charged; an undelivered outcome is the caller's cue to park the
  // payload on the redelivery queue (the barrier delivers it later).
  injector.RevivePeer(1);
  FaultPlan plan;
  plan.seed = 11;
  plan.loss = 0.6;
  injector.Install(plan);
  bool saw_exhausted = false;
  for (uint64_t salt = 0; salt < 200; ++salt) {
    const uint64_t before = traffic.total().messages;
    auto out = channel.SendAssured(0, 1, MessageKind::kInsertPostings, 10,
                                   2, salt);
    const uint64_t records = traffic.total().messages - before;
    EXPECT_LE(records, 3u);
    EXPECT_EQ(records, 1 + out.retries);
    saw_exhausted |= !out.delivered;
  }
  EXPECT_TRUE(saw_exhausted);  // 0.6^3 ~ 22% of 200
}

}  // namespace
}  // namespace hdk::net
