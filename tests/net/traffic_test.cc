#include "net/traffic.h"

#include <gtest/gtest.h>

namespace hdk::net {
namespace {

TEST(TrafficRecorderTest, RecordsTotals) {
  TrafficRecorder rec;
  rec.Record(0, 1, MessageKind::kInsertPostings, 100, 3);
  rec.Record(1, 0, MessageKind::kPostingsResponse, 50, 1);
  EXPECT_EQ(rec.total().messages, 2u);
  EXPECT_EQ(rec.total().postings, 150u);
  EXPECT_EQ(rec.total().hops, 4u);
}

TEST(TrafficRecorderTest, ByteModel) {
  CostModel model;
  model.header_bytes = 10;
  model.posting_bytes = 4;
  TrafficRecorder rec(model);
  rec.Record(0, 1, MessageKind::kKeyProbe, 5, 2);
  EXPECT_EQ(rec.total().bytes, 10u + 5u * 4u);
}

TEST(TrafficRecorderTest, PerHopOverhead) {
  CostModel model;
  model.header_bytes = 0;
  model.posting_bytes = 0;
  model.per_hop_overhead = 7;
  TrafficRecorder rec(model);
  rec.Record(0, 1, MessageKind::kKeyProbe, 0, 3);
  EXPECT_EQ(rec.total().bytes, 21u);
}

TEST(TrafficRecorderTest, PerKindBreakdown) {
  TrafficRecorder rec;
  rec.Record(0, 1, MessageKind::kInsertPostings, 10, 1);
  rec.Record(0, 1, MessageKind::kInsertPostings, 20, 1);
  rec.Record(0, 1, MessageKind::kNdkNotification, 0, 1);
  EXPECT_EQ(rec.ByKind(MessageKind::kInsertPostings).messages, 2u);
  EXPECT_EQ(rec.ByKind(MessageKind::kInsertPostings).postings, 30u);
  EXPECT_EQ(rec.ByKind(MessageKind::kNdkNotification).messages, 1u);
  EXPECT_EQ(rec.ByKind(MessageKind::kKeyProbe).messages, 0u);
}

TEST(TrafficRecorderTest, PerPeerSentReceived) {
  TrafficRecorder rec;
  rec.Record(0, 1, MessageKind::kKeyProbe, 5, 2);
  rec.Record(2, 0, MessageKind::kKeyProbe, 3, 1);
  EXPECT_EQ(rec.SentBy(0).messages, 1u);
  EXPECT_EQ(rec.SentBy(0).postings, 5u);
  EXPECT_EQ(rec.ReceivedBy(0).postings, 3u);
  EXPECT_EQ(rec.ReceivedBy(1).messages, 1u);
  EXPECT_EQ(rec.SentBy(1).messages, 0u);
  EXPECT_EQ(rec.num_peers(), 3u);
}

TEST(TrafficRecorderTest, AutoGrowsPeerTable) {
  TrafficRecorder rec;
  rec.Record(7, 9, MessageKind::kMaintenance, 0, 0);
  EXPECT_EQ(rec.num_peers(), 10u);
}

TEST(TrafficRecorderTest, ResetClearsCountersKeepsPeers) {
  TrafficRecorder rec;
  rec.Record(0, 1, MessageKind::kKeyProbe, 5, 2);
  rec.Reset();
  EXPECT_EQ(rec.total().messages, 0u);
  EXPECT_EQ(rec.SentBy(0).messages, 0u);
  EXPECT_EQ(rec.ByKind(MessageKind::kKeyProbe).messages, 0u);
  EXPECT_EQ(rec.num_peers(), 2u);
}

TEST(TrafficRecorderTest, SnapshotSupportsDifferentialMeasurement) {
  TrafficRecorder rec;
  rec.Record(0, 1, MessageKind::kKeyProbe, 5, 1);
  TrafficCounters before = rec.Snapshot();
  rec.Record(0, 1, MessageKind::kPostingsResponse, 25, 1);
  TrafficCounters after = rec.Snapshot();
  EXPECT_EQ(after.postings - before.postings, 25u);
  EXPECT_EQ(after.messages - before.messages, 1u);
}

TEST(TrafficCountersTest, AddAccumulates) {
  TrafficCounters a{1, 2, 3, 4};
  TrafficCounters b{10, 20, 30, 40};
  a.Add(b);
  EXPECT_EQ(a, (TrafficCounters{11, 22, 33, 44}));
}

TEST(MessageKindTest, NamesAreStable) {
  EXPECT_EQ(MessageKindName(MessageKind::kInsertPostings),
            "InsertPostings");
  EXPECT_EQ(MessageKindName(MessageKind::kNdkNotification),
            "NdkNotification");
  EXPECT_EQ(MessageKindName(MessageKind::kMaintenance), "Maintenance");
}

}  // namespace
}  // namespace hdk::net
