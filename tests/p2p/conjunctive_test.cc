// Conjunctive ST retrieval: the naive and Bloom-chain protocol variants
// must return IDENTICAL results, with the Bloom chain transferring far
// fewer postings for selective multi-term queries — and still not beating
// HDK's bounded cost (the paper's point, confirmed by [20]).
#include <gtest/gtest.h>

#include "corpus/stats.h"
#include "corpus/synthetic.h"
#include "dht/pgrid.h"
#include "p2p/single_term.h"

namespace hdk::p2p {
namespace {

class ConjunctiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus::SyntheticConfig cfg;
    cfg.seed = 90210;
    cfg.vocabulary_size = 2000;
    cfg.num_topics = 10;
    cfg.topic_width = 30;
    cfg.mean_doc_length = 60.0;
    cfg.topic_share = 0.7;
    corpus::SyntheticCorpus corpus(cfg);
    corpus.FillStore(300, &store_);

    overlay_ = std::make_unique<dht::PGridOverlay>(6, 42);
    traffic_ = std::make_unique<net::TrafficRecorder>();
    engine_ = std::make_unique<SingleTermP2PEngine>(overlay_.get(),
                                                    traffic_.get());
    for (PeerId p = 0; p < 6; ++p) {
      ASSERT_TRUE(engine_->IndexPeer(p, store_, p * 50, (p + 1) * 50).ok());
    }
  }

  // A query of frequent co-occurring terms (from one document's prefix).
  std::vector<TermId> FrequentQuery(DocId doc, size_t n) {
    std::vector<TermId> q;
    auto tokens = store_.Tokens(doc);
    for (TermId t : tokens) {
      bool seen = false;
      for (TermId u : q) seen |= u == t;
      if (!seen) q.push_back(t);
      if (q.size() == n) break;
    }
    return q;
  }

  corpus::DocumentStore store_;
  std::unique_ptr<dht::PGridOverlay> overlay_;
  std::unique_ptr<net::TrafficRecorder> traffic_;
  std::unique_ptr<SingleTermP2PEngine> engine_;
};

TEST_F(ConjunctiveTest, BloomAndNaiveAgreeExactly) {
  for (DocId doc : {0u, 7u, 42u, 120u, 260u}) {
    auto q = FrequentQuery(doc, 3);
    auto naive = engine_->SearchConjunctive(0, q, 50, /*use_bloom=*/false);
    auto bloom = engine_->SearchConjunctive(0, q, 50, /*use_bloom=*/true);
    ASSERT_EQ(naive.results.size(), bloom.results.size()) << doc;
    for (size_t i = 0; i < naive.results.size(); ++i) {
      EXPECT_EQ(naive.results[i].doc, bloom.results[i].doc);
      EXPECT_NEAR(naive.results[i].score, bloom.results[i].score, 1e-12);
    }
  }
}

TEST_F(ConjunctiveTest, ConjunctiveResultsContainAllTerms) {
  auto q = FrequentQuery(11, 3);
  auto exec = engine_->SearchConjunctive(0, q, 300, false);
  for (const auto& r : exec.results) {
    auto tokens = store_.Tokens(r.doc);
    for (TermId t : q) {
      bool found = false;
      for (TermId u : tokens) found |= u == t;
      EXPECT_TRUE(found) << "doc " << r.doc << " missing term " << t;
    }
  }
  // The source document itself qualifies.
  bool has_source = false;
  for (const auto& r : exec.results) has_source |= r.doc == 11;
  EXPECT_TRUE(has_source);
}

TEST_F(ConjunctiveTest, BloomChainReducesPostingTraffic) {
  uint64_t naive_total = 0, bloom_total = 0;
  int measured = 0;
  for (DocId doc = 0; doc < 60; doc += 4) {
    auto q = FrequentQuery(doc, 3);
    if (q.size() < 3) continue;
    auto naive = engine_->SearchConjunctive(1, q, 20, false);
    auto bloom = engine_->SearchConjunctive(1, q, 20, true);
    naive_total += naive.postings_transferred;
    bloom_total += bloom.postings_transferred;
    ++measured;
  }
  ASSERT_GT(measured, 5);
  // The chain ships candidates instead of full lists.
  EXPECT_LT(bloom_total, naive_total)
      << "bloom " << bloom_total << " vs naive " << naive_total;
  // But it is not free: Bloom payloads were shipped too.
}

TEST_F(ConjunctiveTest, MissingTermShortCircuits) {
  std::vector<TermId> q{1999999u, 5u};
  auto exec = engine_->SearchConjunctive(0, q, 10, true);
  EXPECT_TRUE(exec.results.empty());
  EXPECT_EQ(exec.postings_transferred, 0u);
  EXPECT_LE(exec.messages, 2u);
}

TEST_F(ConjunctiveTest, SingleTermFallsBackToFullList) {
  auto q = FrequentQuery(3, 1);
  auto bloom = engine_->SearchConjunctive(0, q, 10, true);
  auto naive = engine_->SearchConjunctive(0, q, 10, false);
  EXPECT_EQ(bloom.postings_transferred, naive.postings_transferred);
  EXPECT_EQ(bloom.bloom_bytes, 0u);
}

TEST_F(ConjunctiveTest, TrafficRecorderSeesBloomKind) {
  auto q = FrequentQuery(0, 3);
  ASSERT_EQ(q.size(), 3u);
  traffic_->Reset();
  (void)engine_->SearchConjunctive(0, q, 10, true);
  EXPECT_GT(traffic_->ByKind(net::MessageKind::kBloomFilter).messages, 0u);
}

}  // namespace
}  // namespace hdk::p2p
