#include "p2p/global_index.h"

#include <gtest/gtest.h>

#include "dht/pgrid.h"

namespace hdk::p2p {
namespace {

class GlobalIndexTest : public ::testing::Test {
 protected:
  GlobalIndexTest() : overlay_(4, 42), index_(&overlay_, &traffic_) {}

  HdkParams Params(Freq df_max) {
    HdkParams p;
    p.df_max = df_max;
    return p;
  }

  dht::PGridOverlay overlay_;
  net::TrafficRecorder traffic_;
  DistributedGlobalIndex index_;
};

TEST_F(GlobalIndexTest, AggregatesDfAcrossPeers) {
  hdk::TermKey key{1, 2};
  index_.InsertPostings(0, key,
                        index::PostingList({{0, 1, 10}, {1, 1, 10}}),
                        Params(10), 10.0);
  index_.InsertPostings(1, key,
                        index::PostingList({{5, 1, 10}, {6, 1, 10},
                                            {7, 1, 10}}),
                        Params(10), 10.0);
  auto outcome = index_.EndLevel(Params(10), 10.0);
  EXPECT_EQ(outcome.hdks, 1u);
  EXPECT_EQ(outcome.ndks, 0u);

  const hdk::KeyEntry* entry = index_.Peek(key);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->global_df, 5u);
  EXPECT_TRUE(entry->is_hdk);
  EXPECT_EQ(entry->postings.size(), 5u);
}

TEST_F(GlobalIndexTest, ClassifiesNdkAndTruncates) {
  hdk::TermKey key{7};
  std::vector<index::Posting> postings;
  for (DocId d = 0; d < 20; ++d) {
    postings.push_back({d, d + 1, 100});  // higher doc => higher tf
  }
  // Sender-side truncation already limits the transmitted payload to the
  // local top-DFmax.
  const uint64_t payload = index_.InsertPostings(
      0, key, index::PostingList(postings), Params(5), 100.0);
  EXPECT_EQ(payload, 5u);
  auto outcome = index_.EndLevel(Params(5), 100.0);
  EXPECT_EQ(outcome.ndks, 1u);

  const hdk::KeyEntry* entry = index_.Peek(key);
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->is_hdk);
  EXPECT_EQ(entry->global_df, 20u);
  ASSERT_EQ(entry->postings.size(), 5u);
  // The highest-tf postings survive.
  EXPECT_EQ(entry->postings[0].doc, 15u);
  EXPECT_EQ(entry->postings[4].doc, 19u);
}

TEST_F(GlobalIndexTest, NotifiesEveryContributorOfAnNdk) {
  hdk::TermKey key{3};
  for (PeerId p = 0; p < 3; ++p) {
    std::vector<index::Posting> postings;
    for (DocId d = p * 10; d < p * 10 + 4; ++d) {
      postings.push_back({d, 1, 10});
    }
    index_.InsertPostings(p, key, index::PostingList(postings), Params(10),
                          10.0);
  }
  auto outcome = index_.EndLevel(Params(10), 10.0);  // df 12 > 10
  ASSERT_EQ(outcome.notifications.size(), 1u);
  EXPECT_EQ(outcome.notifications[0].first, key);
  EXPECT_EQ(outcome.notifications[0].second,
            (std::vector<PeerId>{0, 1, 2}));
  EXPECT_EQ(outcome.notification_messages, 3u);
  EXPECT_EQ(traffic_.ByKind(net::MessageKind::kNdkNotification).messages,
            3u);
}

TEST_F(GlobalIndexTest, LateContributionCrossingDfMaxNotifiesEveryone) {
  // Incremental growth: a key published as HDK crosses DFmax when a new
  // peer contributes — ALL contributors (old and new) must be notified so
  // the old peers expand it too.
  hdk::TermKey key{3};
  std::vector<index::Posting> first;
  for (DocId d = 0; d < 6; ++d) first.push_back({d, 1, 10});
  index_.InsertPostings(0, key, index::PostingList(first), Params(10), 10.0);
  auto outcome = index_.EndLevel(Params(10), 10.0);
  EXPECT_EQ(outcome.hdks, 1u);
  EXPECT_EQ(outcome.reclassified, 0u);
  ASSERT_TRUE(index_.Peek(key)->is_hdk);

  std::vector<index::Posting> second;
  for (DocId d = 20; d < 26; ++d) second.push_back({d, 1, 10});
  index_.InsertPostings(1, key, index::PostingList(second), Params(10),
                        10.0);
  outcome = index_.EndLevel(Params(10), 10.0);  // df 12 > 10 now
  EXPECT_EQ(outcome.ndks, 1u);
  EXPECT_EQ(outcome.reclassified, 1u);
  ASSERT_EQ(outcome.notifications.size(), 1u);
  EXPECT_EQ(outcome.notifications[0].second,
            (std::vector<PeerId>{0, 1}));
  EXPECT_FALSE(index_.Peek(key)->is_hdk);
  EXPECT_EQ(index_.Peek(key)->global_df, 12u);
}

TEST_F(GlobalIndexTest, LateContributionToKnownNdkNotifiesOnlyNewcomer) {
  hdk::TermKey key{5};
  std::vector<index::Posting> first;
  for (DocId d = 0; d < 12; ++d) first.push_back({d, 1, 10});
  index_.InsertPostings(0, key, index::PostingList(first), Params(10), 10.0);
  auto outcome = index_.EndLevel(Params(10), 10.0);  // NDK immediately
  EXPECT_EQ(outcome.ndks, 1u);

  std::vector<index::Posting> second;
  for (DocId d = 20; d < 23; ++d) second.push_back({d, 1, 10});
  index_.InsertPostings(1, key, index::PostingList(second), Params(10),
                        10.0);
  outcome = index_.EndLevel(Params(10), 10.0);
  EXPECT_EQ(outcome.reclassified, 0u);
  ASSERT_EQ(outcome.notifications.size(), 1u);
  // Peer 0 already expanded this key; only the newcomer learns about it.
  EXPECT_EQ(outcome.notifications[0].second, (std::vector<PeerId>{1}));
}

TEST_F(GlobalIndexTest, NotificationsCanBeDisabled) {
  hdk::TermKey key{3};
  std::vector<index::Posting> postings;
  for (DocId d = 0; d < 12; ++d) postings.push_back({d, 1, 10});
  index_.InsertPostings(0, key, index::PostingList(postings), Params(10),
                        10.0);
  auto outcome = index_.EndLevel(Params(10), 10.0,
                                 /*notify_contributors=*/false);
  EXPECT_EQ(outcome.ndks, 1u);
  EXPECT_TRUE(outcome.notifications.empty());
  EXPECT_EQ(traffic_.ByKind(net::MessageKind::kNdkNotification).messages,
            0u);
}

TEST_F(GlobalIndexTest, InsertRecordsTraffic) {
  hdk::TermKey key{9};
  index_.InsertPostings(2, key,
                        index::PostingList({{0, 1, 5}, {1, 1, 5},
                                            {2, 1, 5}}),
                        Params(10), 5.0);
  const auto& insert =
      traffic_.ByKind(net::MessageKind::kInsertPostings);
  EXPECT_EQ(insert.messages, 1u);
  EXPECT_EQ(insert.postings, 3u);
}

TEST_F(GlobalIndexTest, FetchRecordsProbeAndResponse) {
  hdk::TermKey key{4};
  index_.InsertPostings(0, key,
                        index::PostingList({{0, 1, 5}, {1, 1, 5}}),
                        Params(10), 5.0);
  index_.EndLevel(Params(10), 5.0);

  const hdk::KeyEntry* entry = index_.FetchFrom(3, key);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(traffic_.ByKind(net::MessageKind::kKeyProbe).messages, 1u);
  const auto& resp =
      traffic_.ByKind(net::MessageKind::kPostingsResponse);
  EXPECT_EQ(resp.messages, 1u);
  EXPECT_EQ(resp.postings, 2u);
}

TEST_F(GlobalIndexTest, FetchMissRecordsEmptyResponse) {
  const hdk::KeyEntry* entry = index_.FetchFrom(0, hdk::TermKey{99});
  EXPECT_EQ(entry, nullptr);
  EXPECT_EQ(traffic_.ByKind(net::MessageKind::kPostingsResponse).postings,
            0u);
  EXPECT_EQ(traffic_.ByKind(net::MessageKind::kPostingsResponse).messages,
            1u);
}

TEST_F(GlobalIndexTest, KeysArePlacedByHashOnCorrectFragments) {
  for (TermId t = 0; t < 40; ++t) {
    hdk::TermKey key{t};
    index_.InsertPostings(0, key, index::PostingList({{0, 1, 5}}),
                          Params(10), 5.0);
  }
  index_.EndLevel(Params(10), 5.0);
  EXPECT_EQ(index_.TotalKeys(), 40u);
  uint64_t sum = 0;
  for (PeerId p = 0; p < 4; ++p) {
    sum += index_.KeysAt(p);
  }
  EXPECT_EQ(sum, 40u);
  // Placement must match ResponsiblePeer.
  for (TermId t = 0; t < 40; ++t) {
    hdk::TermKey key{t};
    EXPECT_NE(index_.Peek(key), nullptr);
  }
}

TEST_F(GlobalIndexTest, OverlayGrowthMigratesResponsibility) {
  for (TermId t = 0; t < 40; ++t) {
    index_.InsertPostings(0, hdk::TermKey{t},
                          index::PostingList({{0, 1, 5}}), Params(10), 5.0);
  }
  index_.EndLevel(Params(10), 5.0);

  ASSERT_TRUE(overlay_.AddPeer().ok());
  ASSERT_TRUE(overlay_.AddPeer().ok());
  const uint64_t migrated = index_.OnOverlayGrown();
  EXPECT_GT(migrated, 0u);
  EXPECT_EQ(traffic_.ByKind(net::MessageKind::kMaintenance).messages,
            migrated);

  // Every key is findable at its NEW responsible peer.
  EXPECT_EQ(index_.TotalKeys(), 40u);
  for (TermId t = 0; t < 40; ++t) {
    EXPECT_NE(index_.Peek(hdk::TermKey{t}), nullptr);
  }
}

TEST_F(GlobalIndexTest, EraseKeysContainingPurgesEverywhere) {
  index_.InsertPostings(0, hdk::TermKey{1}, index::PostingList({{0, 1, 5}}),
                        Params(10), 5.0);
  index_.InsertPostings(0, hdk::TermKey{2}, index::PostingList({{0, 1, 5}}),
                        Params(10), 5.0);
  index_.EndLevel(Params(10), 5.0);
  index_.InsertPostings(1, hdk::TermKey{1, 2},
                        index::PostingList({{5, 1, 5}}), Params(10), 5.0);
  index_.EndLevel(Params(10), 5.0);

  EXPECT_EQ(index_.EraseKeysContaining(1), 2u);  // {1} and {1,2}
  EXPECT_EQ(index_.Peek(hdk::TermKey{1}), nullptr);
  EXPECT_EQ(index_.Peek(hdk::TermKey{1, 2}), nullptr);
  EXPECT_NE(index_.Peek(hdk::TermKey{2}), nullptr);
  EXPECT_EQ(index_.TotalKeys(), 1u);
}

TEST_F(GlobalIndexTest, StoredPostingsPerPeerSumsToTotal) {
  for (TermId t = 0; t < 20; ++t) {
    index_.InsertPostings(
        0, hdk::TermKey{t},
        index::PostingList({{0, 1, 5}, {1, 1, 5}}), Params(10), 5.0);
  }
  index_.EndLevel(Params(10), 5.0);
  uint64_t sum = 0;
  for (PeerId p = 0; p < 4; ++p) {
    sum += index_.StoredPostingsAt(p);
  }
  EXPECT_EQ(sum, index_.TotalStoredPostings());
  EXPECT_EQ(sum, 40u);
}

TEST_F(GlobalIndexTest, ExportContainsEverything) {
  index_.InsertPostings(0, hdk::TermKey{1},
                        index::PostingList({{0, 1, 5}}), Params(10), 5.0);
  index_.InsertPostings(1, hdk::TermKey{2, 3},
                        index::PostingList({{5, 1, 5}}), Params(10), 5.0);
  index_.EndLevel(Params(10), 5.0);
  auto contents = index_.ExportContents();
  EXPECT_EQ(contents.size(), 2u);
  EXPECT_NE(contents.Find(hdk::TermKey{1}), nullptr);
  EXPECT_NE(contents.Find(hdk::TermKey{2, 3}), nullptr);
}

TEST(ShardedGlobalIndexTest, DefaultShardCountHeuristic) {
  // No pool (or a single-thread pool) = the serial path: one shard.
  EXPECT_EQ(DistributedGlobalIndex::DefaultShardCount(nullptr), 1u);
  ThreadPool serial(1);
  EXPECT_EQ(DistributedGlobalIndex::DefaultShardCount(&serial), 1u);
  // Workers get a pow2 >= 4x oversubscription, capped at 64.
  ThreadPool two(2);
  EXPECT_EQ(DistributedGlobalIndex::DefaultShardCount(&two), 8u);
  ThreadPool three(3);
  EXPECT_EQ(DistributedGlobalIndex::DefaultShardCount(&three), 16u);
  ThreadPool many(32);
  EXPECT_EQ(DistributedGlobalIndex::DefaultShardCount(&many), 64u);
}

/// Feeds the same mixed HDK/NDK workload into two indexes.
void FeedWorkload(DistributedGlobalIndex& index, const HdkParams& params) {
  for (TermId t = 0; t < 30; ++t) {
    for (PeerId p = 0; p < 3; ++p) {
      std::vector<index::Posting> postings;
      for (DocId d = p * 10; d < p * 10 + (t % 3) + 2; ++d) {
        postings.push_back({d, 1, 10});
      }
      index.InsertPostings(p, hdk::TermKey{t},
                           index::PostingList(postings), params, 10.0);
    }
  }
}

TEST(ShardedGlobalIndexTest, ShardCountDoesNotAffectObservableState) {
  // The same workload through 1 shard, 7 shards (inline) and 16 shards
  // driven by a pool must yield identical published entries, identical
  // (ascending-key) notifications and identical traffic.
  HdkParams params;
  params.df_max = 8;  // global df in {6, 9, 12} -> HDK/NDK mix, varying
  params.s_max = 3;   // truncation choices
  dht::PGridOverlay overlay(4, 42);

  net::TrafficRecorder traffic_one;
  DistributedGlobalIndex one(&overlay, &traffic_one, nullptr,
                             /*num_shards=*/1);
  FeedWorkload(one, params);
  const LevelOutcome base = one.EndLevel(params, 10.0);

  ThreadPool pool(4);
  std::vector<std::unique_ptr<DistributedGlobalIndex>> others;
  std::vector<std::unique_ptr<net::TrafficRecorder>> recorders;
  recorders.push_back(std::make_unique<net::TrafficRecorder>());
  others.push_back(std::make_unique<DistributedGlobalIndex>(
      &overlay, recorders.back().get(), nullptr, /*num_shards=*/7));
  recorders.push_back(std::make_unique<net::TrafficRecorder>());
  others.push_back(std::make_unique<DistributedGlobalIndex>(
      &overlay, recorders.back().get(), &pool, /*num_shards=*/0));
  EXPECT_EQ(others.back()->num_shards(), 16u);

  for (size_t i = 0; i < others.size(); ++i) {
    DistributedGlobalIndex& other = *others[i];
    FeedWorkload(other, params);
    const LevelOutcome outcome = other.EndLevel(params, 10.0);
    EXPECT_EQ(outcome.hdks, base.hdks);
    EXPECT_EQ(outcome.ndks, base.ndks);
    EXPECT_EQ(outcome.notification_messages, base.notification_messages);
    EXPECT_EQ(outcome.reclassified, base.reclassified);
    // The reduced notification list is ascending-key deterministic.
    ASSERT_EQ(outcome.notifications.size(), base.notifications.size());
    for (size_t n = 0; n < base.notifications.size(); ++n) {
      EXPECT_EQ(outcome.notifications[n].first, base.notifications[n].first);
      EXPECT_EQ(outcome.notifications[n].second,
                base.notifications[n].second);
    }
    for (TermId t = 0; t < 30; ++t) {
      const hdk::KeyEntry* a = one.Peek(hdk::TermKey{t});
      const hdk::KeyEntry* b = other.Peek(hdk::TermKey{t});
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      EXPECT_EQ(a->global_df, b->global_df);
      EXPECT_EQ(a->is_hdk, b->is_hdk);
      EXPECT_EQ(a->postings, b->postings);
    }
    EXPECT_EQ(recorders[i]->total(), traffic_one.total());
    EXPECT_EQ(other.TotalKeys(), one.TotalKeys());
    EXPECT_EQ(other.TotalStoredPostings(), one.TotalStoredPostings());
  }
}

TEST(ShardedGlobalIndexTest, NotificationsAscendingByKeyAcrossShards) {
  HdkParams params;
  params.df_max = 3;
  dht::PGridOverlay overlay(4, 42);
  net::TrafficRecorder traffic;
  DistributedGlobalIndex index(&overlay, &traffic, nullptr,
                               /*num_shards=*/5);
  FeedWorkload(index, params);
  const LevelOutcome outcome = index.EndLevel(params, 10.0);
  ASSERT_GT(outcome.notifications.size(), 1u);
  for (size_t i = 1; i < outcome.notifications.size(); ++i) {
    EXPECT_TRUE(outcome.notifications[i - 1].first <
                outcome.notifications[i].first);
  }
}

TEST(ShardedGlobalIndexTest, OverlayGrowthMigratesWithinShards) {
  // Re-placement after joins must keep every key findable with a
  // many-shard index too (handovers are shard-local by construction).
  HdkParams params;
  params.df_max = 10;
  dht::PGridOverlay overlay(4, 42);
  net::TrafficRecorder traffic;
  DistributedGlobalIndex index(&overlay, &traffic, nullptr,
                               /*num_shards=*/7);
  for (TermId t = 0; t < 40; ++t) {
    index.InsertPostings(0, hdk::TermKey{t},
                         index::PostingList({{0, 1, 5}}), params, 5.0);
  }
  index.EndLevel(params, 5.0);

  ASSERT_TRUE(overlay.AddPeer().ok());
  ASSERT_TRUE(overlay.AddPeer().ok());
  const uint64_t migrated = index.OnOverlayGrown();
  EXPECT_GT(migrated, 0u);
  EXPECT_EQ(traffic.ByKind(net::MessageKind::kMaintenance).messages,
            migrated);
  EXPECT_EQ(index.TotalKeys(), 40u);
  for (TermId t = 0; t < 40; ++t) {
    EXPECT_NE(index.Peek(hdk::TermKey{t}), nullptr);
  }
}

}  // namespace
}  // namespace hdk::p2p
