// The central correctness property of the distributed implementation:
// the indexing protocol run over any number of peers and either overlay
// produces EXACTLY the logical global index that the centralized
// reference indexer computes (paper Section 3.1 — the level-wise protocol
// with NDK notifications reconstructs global knowledge losslessly).
#include "p2p/indexing_protocol.h"

#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "corpus/stats.h"
#include "corpus/synthetic.h"
#include "engine/overlay_factory.h"
#include "hdk/indexer.h"

namespace hdk::p2p {
namespace {

using engine::MakeOverlay;
using engine::OverlayKind;

struct Fixture {
  corpus::DocumentStore store;
  std::unique_ptr<corpus::CollectionStats> stats;
  HdkParams params;

  explicit Fixture(uint64_t docs = 180) {
    corpus::SyntheticConfig cfg;
    cfg.seed = 777;
    cfg.vocabulary_size = 3000;
    cfg.num_topics = 12;
    cfg.topic_width = 35;
    cfg.mean_doc_length = 50.0;
    cfg.topic_share = 0.7;
    corpus::SyntheticCorpus corpus(cfg);
    corpus.FillStore(docs, &store);
    stats = std::make_unique<corpus::CollectionStats>(store);

    params.df_max = 10;
    params.very_frequent_threshold = 500;
    params.window = 8;
    params.s_max = 3;
  }

  std::vector<std::pair<DocId, DocId>> Ranges(uint32_t peers) const {
    std::vector<std::pair<DocId, DocId>> out;
    DocId per = static_cast<DocId>(store.size() / peers);
    for (uint32_t p = 0; p < peers; ++p) {
      DocId first = p * per;
      DocId last = (p + 1 == peers) ? static_cast<DocId>(store.size())
                                    : (p + 1) * per;
      out.emplace_back(first, last);
    }
    return out;
  }
};

void ExpectSameContents(const hdk::HdkIndexContents& a,
                        const hdk::HdkIndexContents& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [key, entry] : a.entries()) {
    const hdk::KeyEntry* other = b.Find(key);
    ASSERT_NE(other, nullptr) << "missing key " << key.ToString();
    EXPECT_EQ(entry.global_df, other->global_df) << key.ToString();
    EXPECT_EQ(entry.is_hdk, other->is_hdk) << key.ToString();
    EXPECT_EQ(entry.postings, other->postings) << key.ToString();
  }
}

class ProtocolEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<OverlayKind, uint32_t>> {};

TEST_P(ProtocolEquivalenceTest, DistributedEqualsCentralized) {
  Fixture fx;
  const auto [kind, peers] = GetParam();

  // Centralized reference.
  hdk::CentralizedHdkIndexer reference(fx.params);
  auto expected = reference.Build(fx.store, *fx.stats);
  ASSERT_TRUE(expected.ok());

  // Distributed protocol.
  auto overlay = MakeOverlay(kind, peers, 42);
  net::TrafficRecorder traffic;
  HdkIndexingProtocol protocol(fx.params, fx.store, overlay.get(),
                               &traffic);
  auto global = protocol.Run(fx.Ranges(peers), *fx.stats);
  ASSERT_TRUE(global.ok());

  ExpectSameContents(*expected, (*global)->ExportContents());
}

INSTANTIATE_TEST_SUITE_P(
    OverlaysAndPeerCounts, ProtocolEquivalenceTest,
    ::testing::Combine(::testing::Values(OverlayKind::kPGrid,
                                         OverlayKind::kChord),
                       ::testing::Values(1u, 2u, 4u, 7u)),
    [](const auto& info) {
      std::string kind = std::get<0>(info.param) == OverlayKind::kPGrid
                             ? "PGrid"
                             : "Chord";
      return kind + "_" + std::to_string(std::get<1>(info.param)) +
             "peers";
    });

TEST(IndexingProtocolTest, ReportAccountsInsertions) {
  Fixture fx;
  auto overlay = MakeOverlay(OverlayKind::kPGrid, 4, 42);
  net::TrafficRecorder traffic;
  HdkIndexingProtocol protocol(fx.params, fx.store, overlay.get(),
                               &traffic);
  auto global = protocol.Run(fx.Ranges(4), *fx.stats);
  ASSERT_TRUE(global.ok());
  const IndexingReport& report = protocol.report();

  ASSERT_EQ(report.levels.size(), fx.params.s_max);
  // Total inserted postings equals the insert-message payload sum.
  EXPECT_EQ(report.TotalInsertedPostings(),
            traffic.ByKind(net::MessageKind::kInsertPostings).postings);
  // Per-peer insertions sum to the total.
  uint64_t per_peer_sum = 0;
  for (uint64_t v : report.inserted_postings_per_peer) per_peer_sum += v;
  EXPECT_EQ(per_peer_sum, report.TotalInsertedPostings());
  // Inserted >= stored (NDK truncation).
  EXPECT_GE(report.TotalInsertedPostings(),
            (*global)->TotalStoredPostings());
  // Some NDKs must exist at level 1 for the fixture to be meaningful.
  EXPECT_GT(report.levels[0].ndks, 0u);
  // NDK notifications were sent for expansion at levels < s_max.
  EXPECT_GT(report.levels[0].notifications, 0u);
}

TEST(IndexingProtocolTest, PeerCountDoesNotChangeLogicalIndex) {
  Fixture fx;
  hdk::HdkIndexContents first;
  bool have_first = false;
  for (uint32_t peers : {1u, 3u, 6u}) {
    auto overlay = MakeOverlay(OverlayKind::kPGrid, peers, 42);
    net::TrafficRecorder traffic;
    HdkIndexingProtocol protocol(fx.params, fx.store, overlay.get(),
                                 &traffic);
    auto global = protocol.Run(fx.Ranges(peers), *fx.stats);
    ASSERT_TRUE(global.ok());
    auto contents = (*global)->ExportContents();
    if (!have_first) {
      first = std::move(contents);
      have_first = true;
    } else {
      ExpectSameContents(first, contents);
    }
  }
}

TEST(IndexingProtocolTest, RejectsMismatchedPeerRanges) {
  Fixture fx;
  auto overlay = MakeOverlay(OverlayKind::kPGrid, 4, 42);
  net::TrafficRecorder traffic;
  HdkIndexingProtocol protocol(fx.params, fx.store, overlay.get(),
                               &traffic);
  // 2 ranges vs 4 overlay peers.
  EXPECT_FALSE(protocol.Run(fx.Ranges(2), *fx.stats).ok());
  // Out-of-range documents.
  std::vector<std::pair<DocId, DocId>> bad(4, {0, 1 << 30});
  EXPECT_FALSE(protocol.Run(bad, *fx.stats).ok());
  // Empty peer set.
  EXPECT_FALSE(protocol.Run({}, *fx.stats).ok());
}

TEST(IndexingProtocolTest, GrowEqualsFromScratchRun) {
  // The protocol-level version of the incremental-growth guarantee: Run
  // over a prefix + Grow over the delta == one Run over everything.
  Fixture fx(180);
  corpus::DocumentStore prefix_store;  // the same first 90 docs
  {
    corpus::SyntheticConfig cfg;
    cfg.seed = 777;
    cfg.vocabulary_size = 3000;
    cfg.num_topics = 12;
    cfg.topic_width = 35;
    cfg.mean_doc_length = 50.0;
    cfg.topic_share = 0.7;
    corpus::SyntheticCorpus corpus(cfg);
    corpus.FillStore(90, &prefix_store);
  }
  corpus::CollectionStats prefix_stats(prefix_store);

  // Incremental: 2 peers over 90 docs, then 2 more join with 90 more.
  auto overlay = MakeOverlay(OverlayKind::kPGrid, 2, 42);
  net::TrafficRecorder traffic;
  HdkIndexingProtocol protocol(fx.params, fx.store, overlay.get(),
                               &traffic);
  auto grown = protocol.Run({{0, 45}, {45, 90}}, prefix_stats);
  ASSERT_TRUE(grown.ok());
  ASSERT_TRUE(overlay->AddPeer().ok());
  ASSERT_TRUE(overlay->AddPeer().ok());
  (*grown)->OnOverlayGrown();
  GrowthStats growth;
  ASSERT_TRUE(
      protocol.Grow({{90, 135}, {135, 180}}, *fx.stats, &growth).ok());
  EXPECT_EQ(growth.joined_peers, 2u);
  EXPECT_EQ(growth.delta_documents, 90u);
  EXPECT_GT(growth.delta_insertions, 0u);

  // From scratch: 4 peers over all 180 docs.
  auto overlay_b = MakeOverlay(OverlayKind::kPGrid, 4, 42);
  net::TrafficRecorder traffic_b;
  HdkIndexingProtocol protocol_b(fx.params, fx.store, overlay_b.get(),
                                 &traffic_b);
  auto scratch =
      protocol_b.Run({{0, 45}, {45, 90}, {90, 135}, {135, 180}}, *fx.stats);
  ASSERT_TRUE(scratch.ok());

  ExpectSameContents((*scratch)->ExportContents(),
                     (*grown)->ExportContents());
}

TEST(IndexingProtocolTest, GrowValidatesRanges) {
  Fixture fx;
  auto overlay = MakeOverlay(OverlayKind::kPGrid, 4, 42);
  net::TrafficRecorder traffic;
  HdkIndexingProtocol protocol(fx.params, fx.store, overlay.get(),
                               &traffic);
  // Grow before Run fails.
  EXPECT_FALSE(protocol.Grow({{0, 10}}, *fx.stats).ok());
  auto global = protocol.Run(fx.Ranges(4), *fx.stats);
  ASSERT_TRUE(global.ok());
  // A second Run is rejected.
  EXPECT_FALSE(protocol.Run(fx.Ranges(4), *fx.stats).ok());
  // Overlay was not grown.
  EXPECT_FALSE(protocol.Grow({{180, 200}}, *fx.stats).ok());
  ASSERT_TRUE(overlay->AddPeer().ok());
  // Non-contiguous join range.
  EXPECT_FALSE(protocol.Grow({{200, 220}}, *fx.stats).ok());
}

TEST(IndexingProtocolTest, MoreExpensiveThanSingleTermButBounded) {
  // Sanity on the paper's qualitative claim: HDK indexing inserts more
  // postings than single-term indexing (Figure 4), by a bounded factor.
  Fixture fx;
  auto overlay = MakeOverlay(OverlayKind::kPGrid, 4, 42);
  net::TrafficRecorder traffic;
  HdkIndexingProtocol protocol(fx.params, fx.store, overlay.get(),
                               &traffic);
  auto global = protocol.Run(fx.Ranges(4), *fx.stats);
  ASSERT_TRUE(global.ok());
  const IndexingReport& report = protocol.report();

  const uint64_t st_postings = [&] {
    uint64_t n = 0;
    for (const auto& doc : fx.store.docs()) {
      std::vector<TermId> distinct(doc.tokens.begin(), doc.tokens.end());
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      n += distinct.size();
    }
    return n;
  }();
  EXPECT_GT(report.TotalInsertedPostings(), st_postings / 2);
  EXPECT_LT(report.TotalInsertedPostings(), st_postings * 100);
}

}  // namespace
}  // namespace hdk::p2p
