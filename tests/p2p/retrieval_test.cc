#include "p2p/retrieval.h"

#include <gtest/gtest.h>

#include "corpus/query_gen.h"
#include "corpus/stats.h"
#include "corpus/synthetic.h"
#include "engine/overlay_factory.h"
#include "hdk/query_lattice.h"
#include "p2p/indexing_protocol.h"

namespace hdk::p2p {
namespace {

class RetrievalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus::SyntheticConfig cfg;
    cfg.seed = 2024;
    cfg.vocabulary_size = 3000;
    cfg.num_topics = 12;
    cfg.topic_width = 35;
    cfg.mean_doc_length = 50.0;
    cfg.topic_share = 0.7;
    corpus::SyntheticCorpus corpus(cfg);
    corpus.FillStore(200, &store_);
    stats_ = std::make_unique<corpus::CollectionStats>(store_);

    params_.df_max = 10;
    params_.very_frequent_threshold = 600;
    params_.window = 8;
    params_.s_max = 3;

    overlay_ = engine::MakeOverlay(engine::OverlayKind::kPGrid, 4, 42);
    traffic_ = std::make_unique<net::TrafficRecorder>();
    HdkIndexingProtocol protocol(params_, store_, overlay_.get(),
                                 traffic_.get());
    std::vector<std::pair<DocId, DocId>> ranges{
        {0, 50}, {50, 100}, {100, 150}, {150, 200}};
    auto global = protocol.Run(ranges, *stats_);
    ASSERT_TRUE(global.ok());
    global_ = std::move(global).value();

    retriever_ = std::make_unique<HdkRetriever>(
        global_.get(), params_, stats_->num_documents(),
        stats_->average_document_length(), traffic_.get());
  }

  std::vector<TermId> SampleQuery() {
    corpus::QueryGenConfig qcfg;
    qcfg.min_term_df = 3;
    corpus::QueryGenerator gen(qcfg, store_, *stats_);
    auto queries = gen.Generate(1);
    if (queries.empty()) return {store_.Tokens(0)[0], store_.Tokens(0)[1]};
    return queries[0].terms;
  }

  corpus::DocumentStore store_;
  std::unique_ptr<corpus::CollectionStats> stats_;
  HdkParams params_;
  std::unique_ptr<dht::Overlay> overlay_;
  std::unique_ptr<net::TrafficRecorder> traffic_;
  std::unique_ptr<DistributedGlobalIndex> global_;
  std::unique_ptr<HdkRetriever> retriever_;
};

TEST_F(RetrievalTest, ReturnsRankedResults) {
  auto query = SampleQuery();
  auto exec = retriever_->Search(0, query, 20);
  EXPECT_GT(exec.results.size(), 0u);
  EXPECT_LE(exec.results.size(), 20u);
  for (size_t i = 1; i < exec.results.size(); ++i) {
    EXPECT_GE(exec.results[i - 1].score, exec.results[i].score);
  }
}

TEST_F(RetrievalTest, TrafficBoundedByLatticeTimesDfMax) {
  // Paper Section 4.2: retrieval traffic <= nk * DFmax.
  corpus::QueryGenConfig qcfg;
  qcfg.min_term_df = 3;
  corpus::QueryGenerator gen(qcfg, store_, *stats_);
  for (const auto& q : gen.Generate(40)) {
    auto exec = retriever_->Search(1, q.terms, 20);
    const uint64_t nk = hdk::NumQueryKeys(
        static_cast<uint32_t>(q.terms.size()), params_.s_max);
    EXPECT_LE(exec.cost.postings_fetched, nk * params_.df_max)
        << "query size " << q.terms.size();
    EXPECT_LE(exec.cost.keys_fetched, nk);
    EXPECT_LE(exec.cost.probes, nk);
  }
}

TEST_F(RetrievalTest, DeterministicAcrossOrigins) {
  // Results are origin-independent (the global index is consistent);
  // only routing hops differ.
  auto query = SampleQuery();
  auto a = retriever_->Search(0, query, 20);
  auto b = retriever_->Search(3, query, 20);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].doc, b.results[i].doc);
    EXPECT_NEAR(a.results[i].score, b.results[i].score, 1e-12);
  }
}

TEST_F(RetrievalTest, SourceDocumentIsRetrieved) {
  // Queries are sampled from a document window; that document contains
  // all query terms and should appear in the merged candidate set.
  corpus::QueryGenConfig qcfg;
  qcfg.min_term_df = 3;
  corpus::QueryGenerator gen(qcfg, store_, *stats_);
  size_t found = 0, total = 0;
  for (const auto& q : gen.Generate(30)) {
    auto exec = retriever_->Search(0, q.terms, 200);
    ++total;
    for (const auto& r : exec.results) {
      if (r.doc == q.source_doc) {
        ++found;
        break;
      }
    }
  }
  ASSERT_GT(total, 0u);
  // NDK truncation can drop a source doc, but most should surface.
  EXPECT_GT(static_cast<double>(found) / static_cast<double>(total), 0.5);
}

TEST_F(RetrievalTest, EmptyQueryReturnsNothing) {
  std::vector<TermId> empty;
  auto exec = retriever_->Search(0, empty, 10);
  EXPECT_TRUE(exec.results.empty());
  EXPECT_EQ(exec.cost.postings_fetched, 0u);
  EXPECT_EQ(exec.cost.probes, 0u);
}

TEST_F(RetrievalTest, MessagesAreProbesPlusResponses) {
  auto query = SampleQuery();
  auto exec = retriever_->Search(2, query, 10);
  EXPECT_EQ(exec.cost.messages, 2 * exec.cost.probes);
}

}  // namespace
}  // namespace hdk::p2p
