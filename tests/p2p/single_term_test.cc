#include "p2p/single_term.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "corpus/synthetic.h"
#include "dht/pgrid.h"
#include "index/inverted_index.h"
#include "index/searcher.h"

namespace hdk::p2p {
namespace {

class SingleTermTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus::SyntheticConfig cfg;
    cfg.seed = 31337;
    cfg.vocabulary_size = 2000;
    cfg.num_topics = 10;
    cfg.topic_width = 30;
    cfg.mean_doc_length = 40.0;
    corpus::SyntheticCorpus corpus(cfg);
    corpus.FillStore(120, &store_);
  }

  corpus::DocumentStore store_;
};

TEST_F(SingleTermTest, StoredEqualsInserted) {
  dht::PGridOverlay overlay(4, 42);
  net::TrafficRecorder traffic;
  SingleTermP2PEngine engine(&overlay, &traffic);
  for (PeerId p = 0; p < 4; ++p) {
    ASSERT_TRUE(engine.IndexPeer(p, store_, p * 30, (p + 1) * 30).ok());
  }
  uint64_t inserted = 0;
  for (PeerId p = 0; p < 4; ++p) {
    inserted += engine.InsertedPostingsBy(p);
  }
  // The ST baseline never truncates: stored == inserted.
  EXPECT_EQ(engine.TotalStoredPostings(), inserted);
  EXPECT_EQ(traffic.ByKind(net::MessageKind::kInsertPostings).postings,
            inserted);
}

TEST_F(SingleTermTest, StoredPostingsMatchCentralizedIndex) {
  dht::PGridOverlay overlay(4, 42);
  net::TrafficRecorder traffic;
  SingleTermP2PEngine engine(&overlay, &traffic);
  for (PeerId p = 0; p < 4; ++p) {
    ASSERT_TRUE(engine.IndexPeer(p, store_, p * 30, (p + 1) * 30).ok());
  }
  index::InvertedIndex reference;
  ASSERT_TRUE(reference.AddRange(store_, 0, 120).ok());
  EXPECT_EQ(engine.TotalStoredPostings(), reference.TotalPostings());
  EXPECT_EQ(engine.num_documents(), reference.num_documents());
}

TEST_F(SingleTermTest, SearchMatchesCentralizedBm25) {
  dht::PGridOverlay overlay(4, 42);
  net::TrafficRecorder traffic;
  SingleTermP2PEngine engine(&overlay, &traffic);
  for (PeerId p = 0; p < 4; ++p) {
    ASSERT_TRUE(engine.IndexPeer(p, store_, p * 30, (p + 1) * 30).ok());
  }
  index::InvertedIndex reference;
  ASSERT_TRUE(reference.AddRange(store_, 0, 120).ok());
  index::Bm25Searcher searcher(reference);

  // Use terms that actually occur.
  std::vector<TermId> query{store_.Tokens(0)[0], store_.Tokens(1)[0],
                            store_.Tokens(2)[0]};
  auto distributed = engine.Search(0, query, 20);
  auto centralized = searcher.Search(query, 20);
  ASSERT_EQ(distributed.results.size(), centralized.size());
  for (size_t i = 0; i < centralized.size(); ++i) {
    EXPECT_EQ(distributed.results[i].doc, centralized[i].doc);
    EXPECT_NEAR(distributed.results[i].score, centralized[i].score, 1e-9);
  }
}

TEST_F(SingleTermTest, QueryTrafficEqualsSumOfDfs) {
  dht::PGridOverlay overlay(4, 42);
  net::TrafficRecorder traffic;
  SingleTermP2PEngine engine(&overlay, &traffic);
  for (PeerId p = 0; p < 4; ++p) {
    ASSERT_TRUE(engine.IndexPeer(p, store_, p * 30, (p + 1) * 30).ok());
  }
  index::InvertedIndex reference;
  ASSERT_TRUE(reference.AddRange(store_, 0, 120).ok());

  std::vector<TermId> query{store_.Tokens(0)[0], store_.Tokens(5)[3]};
  auto exec = engine.Search(1, query, 10);

  std::vector<TermId> dedup(query);
  std::sort(dedup.begin(), dedup.end());
  dedup.erase(std::unique(dedup.begin(), dedup.end()), dedup.end());
  uint64_t expected = 0;
  for (TermId t : dedup) {
    expected += reference.DocumentFrequency(t);
  }
  EXPECT_EQ(exec.cost.postings_fetched, expected);
}

TEST_F(SingleTermTest, UnknownTermFetchesNothing) {
  dht::PGridOverlay overlay(2, 42);
  net::TrafficRecorder traffic;
  SingleTermP2PEngine engine(&overlay, &traffic);
  ASSERT_TRUE(engine.IndexPeer(0, store_, 0, 60).ok());
  ASSERT_TRUE(engine.IndexPeer(1, store_, 60, 120).ok());
  std::vector<TermId> query{1999999u};
  auto exec = engine.Search(0, query, 10);
  EXPECT_TRUE(exec.results.empty());
  EXPECT_EQ(exec.cost.postings_fetched, 0u);
  EXPECT_GE(exec.cost.messages, 2u);  // probe + empty response
}

TEST_F(SingleTermTest, IndexPeerValidatesRange) {
  dht::PGridOverlay overlay(2, 42);
  net::TrafficRecorder traffic;
  SingleTermP2PEngine engine(&overlay, &traffic);
  EXPECT_FALSE(engine.IndexPeer(0, store_, 0, 1 << 20).ok());
}

}  // namespace
}  // namespace hdk::p2p
