// Corrupt, truncated, or mismatched snapshot files must fail with a
// descriptive Status — never crash, never return a half-restored engine.
// This suite runs under the ASan/UBSan CI job, so any out-of-bounds read
// or uninitialized use in the reject paths is caught, not just wrong
// answers.
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/synthetic.h"
#include "engine/engine_snapshot.h"
#include "engine/hdk_engine.h"
#include "engine/partition.h"
#include "store/snapshot_format.h"

namespace hdk::engine {
namespace {

corpus::SyntheticCorpus TestCorpus(uint64_t seed = 515) {
  corpus::SyntheticConfig cfg;
  cfg.seed = seed;
  cfg.vocabulary_size = 1500;
  cfg.num_topics = 6;
  cfg.topic_width = 25;
  cfg.mean_doc_length = 40.0;
  return corpus::SyntheticCorpus(cfg);
}

HdkEngineConfig Config() {
  HdkEngineConfig config;
  config.hdk.df_max = 7;
  config.hdk.very_frequent_threshold = 300;
  config.num_threads = 1;
  return config;
}

std::string TempPath(const char* name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

std::vector<char> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// One valid snapshot shared by every corruption case (building the
/// engine dominates this suite's runtime).
class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    store_ = new corpus::DocumentStore();
    TestCorpus().FillStore(80, store_);
    auto built =
        HdkSearchEngine::Build(Config(), *store_, SplitEvenly(80, 4));
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    path_ = new std::string(TempPath("snapshot_corruption_base.hdks"));
    ASSERT_TRUE((*built)->SaveSnapshot(*path_).ok());
    bytes_ = new std::vector<char>(ReadFile(*path_));
    ASSERT_GT(bytes_->size(), sizeof(store::SnapshotHeader));
  }
  static void TearDownTestSuite() {
    delete bytes_;
    delete path_;
    delete store_;
    bytes_ = nullptr;
    path_ = nullptr;
    store_ = nullptr;
  }

  /// Loads `bytes` written to a fresh file and expects a clean failure
  /// whose message contains `want_substring`.
  static void ExpectRejected(const std::vector<char>& bytes,
                             const char* case_name,
                             const std::string& want_substring) {
    const std::string path = TempPath("snapshot_corruption_case.hdks");
    WriteFile(path, bytes);
    auto loaded = LoadEngineSnapshot(Config(), *store_, path);
    ASSERT_FALSE(loaded.ok()) << case_name;
    const std::string message = loaded.status().ToString();
    EXPECT_FALSE(message.empty()) << case_name;
    EXPECT_NE(message.find(want_substring), std::string::npos)
        << case_name << ": '" << message << "'";
  }

  static corpus::DocumentStore* store_;
  static std::string* path_;
  static std::vector<char>* bytes_;
};

corpus::DocumentStore* SnapshotCorruptionTest::store_ = nullptr;
std::string* SnapshotCorruptionTest::path_ = nullptr;
std::vector<char>* SnapshotCorruptionTest::bytes_ = nullptr;

TEST_F(SnapshotCorruptionTest, ValidFileLoads) {
  auto loaded = LoadEngineSnapshot(Config(), *store_, *path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
}

TEST_F(SnapshotCorruptionTest, MissingFile) {
  auto loaded = LoadEngineSnapshot(Config(), *store_,
                                   TempPath("does_not_exist.hdks"));
  ASSERT_FALSE(loaded.ok());
}

TEST_F(SnapshotCorruptionTest, TruncatedAtEveryCoarseOffset) {
  // Cut the file at a spread of lengths — inside the header, the section
  // table, and each payload region. Every prefix must be rejected.
  const std::vector<char>& bytes = *bytes_;
  for (size_t frac = 0; frac <= 9; ++frac) {
    const size_t len = bytes.size() * frac / 10;
    std::vector<char> cut(bytes.begin(),
                          bytes.begin() + static_cast<ptrdiff_t>(len));
    ExpectRejected(cut, ("truncated to " + std::to_string(len)).c_str(),
                   "snapshot");
  }
}

TEST_F(SnapshotCorruptionTest, FlippedPayloadByteFailsChecksum) {
  // Flip one byte in the middle of every section's payload (located via
  // the section table — a blind offset could land in alignment padding):
  // the per-section checksum must catch each before any payload byte is
  // interpreted.
  store::SnapshotHeader header;
  std::memcpy(&header, bytes_->data(), sizeof(header));
  ASSERT_GT(header.num_sections, 0u);
  for (uint32_t s = 0; s < header.num_sections; ++s) {
    store::SectionEntry entry;
    std::memcpy(&entry,
                bytes_->data() + sizeof(header) + s * sizeof(entry),
                sizeof(entry));
    if (entry.length == 0) continue;
    std::vector<char> bytes = *bytes_;
    bytes[entry.offset + entry.length / 2] ^= 0x5a;
    ExpectRejected(bytes,
                   ("flipped byte in section " + std::to_string(entry.id))
                       .c_str(),
                   "checksum");
  }
}

TEST_F(SnapshotCorruptionTest, FlippedTableByteFailsTableChecksum) {
  std::vector<char> bytes = *bytes_;
  bytes[sizeof(store::SnapshotHeader) + 4] ^= 0x5a;
  ExpectRejected(bytes, "flipped table byte", "checksum");
}

TEST_F(SnapshotCorruptionTest, WrongMagic) {
  std::vector<char> bytes = *bytes_;
  bytes[0] = 'X';
  ExpectRejected(bytes, "wrong magic", "magic");
}

TEST_F(SnapshotCorruptionTest, WrongFormatVersion) {
  std::vector<char> bytes = *bytes_;
  const uint32_t bogus = store::kSnapshotFormatVersion + 7;
  std::memcpy(bytes.data() + offsetof(store::SnapshotHeader, format_version),
              &bogus, sizeof(bogus));
  ExpectRejected(bytes, "wrong format version", "version");
}

TEST_F(SnapshotCorruptionTest, WrongConfigHashInHeader) {
  std::vector<char> bytes = *bytes_;
  uint64_t hash = 0;
  std::memcpy(&hash, bytes.data() + offsetof(store::SnapshotHeader, config_hash),
              sizeof(hash));
  hash ^= 0xdeadbeef;
  std::memcpy(bytes.data() + offsetof(store::SnapshotHeader, config_hash),
              &hash, sizeof(hash));
  ExpectRejected(bytes, "wrong config hash", "parameters");
}

TEST_F(SnapshotCorruptionTest, MismatchedLoaderConfig) {
  // An intact file, but the loader runs different engine parameters.
  HdkEngineConfig other = Config();
  other.hdk.df_max = 13;
  auto loaded = LoadEngineSnapshot(other, *store_, *path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("parameters"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST_F(SnapshotCorruptionTest, MismatchedCorpus) {
  // An intact file loaded against a differently-seeded corpus: the store
  // hash must refuse before any cross-checks trip downstream.
  corpus::DocumentStore other;
  TestCorpus(/*seed=*/99).FillStore(80, &other);
  auto loaded = LoadEngineSnapshot(Config(), other, *path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("corpus"), std::string::npos)
      << loaded.status().ToString();

  // A same-seed corpus truncated to fewer documents is also a different
  // collection.
  corpus::DocumentStore shorter;
  TestCorpus().FillStore(40, &shorter);
  auto also = LoadEngineSnapshot(Config(), shorter, *path_);
  ASSERT_FALSE(also.ok());
}

}  // namespace
}  // namespace hdk::engine
