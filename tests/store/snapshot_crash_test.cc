// Crash safety of the snapshot commit protocol (write tmp -> fsync ->
// rename): a writer that dies at ANY point leaves either the old intact
// snapshot or no snapshot — never a torn file under the final name — and
// whatever it left behind (a stale '.tmp', partial bytes) must not
// poison the next SaveSnapshot or a concurrent load.
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/synthetic.h"
#include "engine/engine_snapshot.h"
#include "engine/hdk_engine.h"
#include "engine/partition.h"
#include "store/snapshot_reader.h"

namespace hdk::engine {
namespace {

corpus::SyntheticCorpus CrashCorpus() {
  corpus::SyntheticConfig cfg;
  cfg.seed = 606;
  cfg.vocabulary_size = 1500;
  cfg.num_topics = 6;
  cfg.topic_width = 25;
  cfg.mean_doc_length = 40.0;
  return corpus::SyntheticCorpus(cfg);
}

HdkEngineConfig CrashConfig() {
  HdkEngineConfig config;
  config.hdk.df_max = 7;
  config.hdk.very_frequent_threshold = 300;
  config.num_threads = 1;
  return config;
}

std::string TempPath(const char* name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

std::vector<char> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

class SnapshotCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CrashCorpus().FillStore(80, &store_);
    auto built =
        HdkSearchEngine::Build(CrashConfig(), store_, SplitEvenly(80, 4));
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    engine_ = std::move(*built);
  }

  corpus::DocumentStore store_;
  std::unique_ptr<HdkSearchEngine> engine_;
};

TEST_F(SnapshotCrashTest, StaleTmpFromCrashedWriterIsOverwritten) {
  const std::string path = TempPath("crash_stale_tmp.hdks");
  const std::string tmp = path + ".tmp";
  // A previous writer died mid-write: its half-written tmp survives.
  WriteFile(tmp, std::vector<char>(1234, '\x5a'));

  ASSERT_TRUE(engine_->SaveSnapshot(path).ok());
  // The commit truncated and reused the tmp, then renamed it away:
  // nothing stale remains, and the committed file is fully valid.
  EXPECT_FALSE(std::filesystem::exists(tmp));
  auto loaded = LoadEngineSnapshot(CrashConfig(), store_, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
}

TEST_F(SnapshotCrashTest, CrashBeforeRenameLeavesOldSnapshotReadable) {
  const std::string path = TempPath("crash_before_rename.hdks");
  ASSERT_TRUE(engine_->SaveSnapshot(path).ok());
  const std::vector<char> committed = ReadFile(path);

  // Simulate a writer that crashed after writing PART of the new tmp but
  // before the rename: the final name still holds the old snapshot.
  WriteFile(path + ".tmp",
            std::vector<char>(committed.begin(),
                              committed.begin() +
                                  static_cast<ptrdiff_t>(committed.size() / 3)));
  auto loaded = LoadEngineSnapshot(CrashConfig(), store_, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(ReadFile(path), committed);
  std::filesystem::remove(path + ".tmp");
}

TEST_F(SnapshotCrashTest, TornFileUnderFinalNameIsRefused) {
  const std::string path = TempPath("crash_torn.hdks");
  ASSERT_TRUE(engine_->SaveSnapshot(path).ok());
  const std::vector<char> committed = ReadFile(path);

  // A torn file under the final name (a non-atomic copy, filesystem
  // damage, or a foreign writer): every partial prefix must be refused —
  // by SnapshotReader::Open itself and by the engine loader above it.
  for (size_t frac = 1; frac <= 3; ++frac) {
    std::vector<char> torn(
        committed.begin(),
        committed.begin() +
            static_cast<ptrdiff_t>(committed.size() * frac / 4));
    WriteFile(path, torn);
    EXPECT_FALSE(store::SnapshotReader::Open(path).ok()) << frac;
    EXPECT_FALSE(LoadEngineSnapshot(CrashConfig(), store_, path).ok())
        << frac;
  }

  // Recovery: the next SaveSnapshot over the torn file restores a loadable
  // snapshot with the exact committed bytes.
  ASSERT_TRUE(engine_->SaveSnapshot(path).ok());
  EXPECT_EQ(ReadFile(path), committed);
  EXPECT_TRUE(LoadEngineSnapshot(CrashConfig(), store_, path).ok());
}

}  // namespace
}  // namespace hdk::engine
