// Deterministic mini-fuzz of the snapshot read path: hundreds of seeded
// mutants of a valid snapshot — truncations, bit flips, byte-range
// scribbles, garbage files — thrown at SnapshotReader::Open and at the
// full engine loader. The contract under fuzz is narrow and absolute:
// every outcome is a clean Status (almost always an error; a mutation in
// dead bytes like alignment padding may legitimately still load) and
// NEVER a crash. The suite runs under the ASan/UBSan CI job, so an
// out-of-bounds read in a reject path fails loudly here.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "corpus/synthetic.h"
#include "engine/engine_snapshot.h"
#include "engine/hdk_engine.h"
#include "engine/partition.h"
#include "store/snapshot_reader.h"

namespace hdk::store {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

void WriteFile(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// One valid snapshot shared by every fuzz case.
class SnapshotFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::SyntheticConfig cfg;
    cfg.seed = 717;
    cfg.vocabulary_size = 1500;
    cfg.num_topics = 6;
    cfg.topic_width = 25;
    cfg.mean_doc_length = 40.0;
    store_ = new corpus::DocumentStore();
    corpus::SyntheticCorpus(cfg).FillStore(80, store_);

    engine::HdkEngineConfig config;
    config.hdk.df_max = 7;
    config.hdk.very_frequent_threshold = 300;
    config.num_threads = 1;
    auto built = engine::HdkSearchEngine::Build(config, *store_,
                                                engine::SplitEvenly(80, 4));
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    const std::string path = TempPath("snapshot_fuzz_base.hdks");
    ASSERT_TRUE((*built)->SaveSnapshot(path).ok());

    std::ifstream in(path, std::ios::binary);
    bytes_ = new std::vector<char>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
    ASSERT_GT(bytes_->size(), 64u);
  }
  static void TearDownTestSuite() {
    delete bytes_;
    delete store_;
    bytes_ = nullptr;
    store_ = nullptr;
  }

  /// Opens the mutant through the whole read stack. The only acceptable
  /// outcomes are a clean error Status or a successful, well-formed load.
  static void Exercise(const std::vector<char>& mutant, uint64_t case_id) {
    const std::string path = TempPath("snapshot_fuzz_case.hdks");
    WriteFile(path, mutant);
    auto reader = SnapshotReader::Open(path);
    if (!reader.ok()) {
      EXPECT_FALSE(reader.status().ToString().empty()) << case_id;
      return;
    }
    // The rare survivor (mutation landed in dead bytes): the validated
    // table must stay self-consistent and every section findable.
    for (const SectionEntry& entry : reader->sections()) {
      EXPECT_LE(entry.offset + entry.length, reader->file_size()) << case_id;
      auto cursor = reader->Find(static_cast<SectionId>(entry.id));
      EXPECT_TRUE(cursor.ok()) << case_id;
    }
  }

  static corpus::DocumentStore* store_;
  static std::vector<char>* bytes_;
};

corpus::DocumentStore* SnapshotFuzzTest::store_ = nullptr;
std::vector<char>* SnapshotFuzzTest::bytes_ = nullptr;

TEST_F(SnapshotFuzzTest, RandomTruncations) {
  Rng rng(0xf0221);
  for (int i = 0; i < 120; ++i) {
    const size_t len = rng.NextBounded(bytes_->size());
    Exercise(std::vector<char>(bytes_->begin(),
                               bytes_->begin() + static_cast<ptrdiff_t>(len)),
             len);
  }
}

TEST_F(SnapshotFuzzTest, RandomBitFlips) {
  Rng rng(0xf0222);
  for (int i = 0; i < 200; ++i) {
    std::vector<char> mutant = *bytes_;
    const int flips = 1 + static_cast<int>(rng.NextBounded(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.NextBounded(mutant.size());
      mutant[pos] = static_cast<char>(
          static_cast<unsigned char>(mutant[pos]) ^
          (1u << rng.NextBounded(8)));
    }
    Exercise(mutant, static_cast<uint64_t>(i));
  }
}

TEST_F(SnapshotFuzzTest, RandomByteRangeScribbles) {
  // Overwrite a random slice with random bytes — models a torn write of
  // somebody else's data into the middle of the file. Header-area
  // scribbles attack the magic / version / section-count fields, payload
  // scribbles the checksums, length-field scribbles the cursor bounds.
  Rng rng(0xf0223);
  for (int i = 0; i < 150; ++i) {
    std::vector<char> mutant = *bytes_;
    const size_t begin = rng.NextBounded(mutant.size());
    const size_t len =
        1 + rng.NextBounded(std::min<size_t>(mutant.size() - begin, 512));
    for (size_t b = begin; b < begin + len; ++b) {
      mutant[b] = static_cast<char>(rng.NextBounded(256));
    }
    Exercise(mutant, static_cast<uint64_t>(i));
  }
}

TEST_F(SnapshotFuzzTest, PureGarbageFiles) {
  Rng rng(0xf0224);
  for (int i = 0; i < 80; ++i) {
    std::vector<char> garbage(rng.NextBounded(4096));
    for (char& b : garbage) b = static_cast<char>(rng.NextBounded(256));
    // Empty files and random noise must both fail cleanly on the magic /
    // bounds checks.
    Exercise(garbage, static_cast<uint64_t>(i));
  }
}

TEST_F(SnapshotFuzzTest, MutantsThroughTheEngineLoader) {
  // A smaller round through LoadEngineSnapshot: past SnapshotReader's
  // checksums, the per-section decoders and cross-checks (config hash,
  // store hash, posting cross-validation) must also fail cleanly, and a
  // surviving engine must answer a query without crashing.
  engine::HdkEngineConfig config;
  config.hdk.df_max = 7;
  config.hdk.very_frequent_threshold = 300;
  config.num_threads = 1;
  Rng rng(0xf0225);
  const std::string path = TempPath("snapshot_fuzz_engine.hdks");
  for (int i = 0; i < 40; ++i) {
    std::vector<char> mutant = *bytes_;
    const size_t pos = rng.NextBounded(mutant.size());
    mutant[pos] = static_cast<char>(
        static_cast<unsigned char>(mutant[pos]) ^ (1u << rng.NextBounded(8)));
    WriteFile(path, mutant);
    auto loaded = engine::LoadEngineSnapshot(config, *store_, path);
    if (!loaded.ok()) continue;
    const std::vector<TermId> probe{1, 2, 3};
    auto response = (*loaded)->Search(probe, 5, /*origin=*/0);
    EXPECT_LE(response.results.size(), 5u) << i;
  }
}

}  // namespace
}  // namespace hdk::store
