// The snapshot store's identity contract: an engine restored from a
// snapshot is indistinguishable from the instance that was saved —
// posting-for-posting in the published global index, counter-for-counter
// in the traffic recorder, bit-for-bit in ranked results — on both
// overlays and at every thread count, including ACROSS thread counts
// (the shard layout is re-routed on load when it differs). A restored
// engine also supports the full membership lifecycle: growth waves and
// join/leave/join churn behave exactly as on a never-persisted engine.
#include <cstddef>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/query_gen.h"
#include "corpus/stats.h"
#include "corpus/synthetic.h"
#include "engine/engine_factory.h"
#include "engine/engine_snapshot.h"
#include "engine/fingerprint.h"
#include "engine/hdk_engine.h"
#include "engine/membership.h"
#include "engine/partition.h"
#include "net/traffic.h"

namespace hdk::engine {
namespace {

corpus::SyntheticCorpus TestCorpus() {
  corpus::SyntheticConfig cfg;
  cfg.seed = 2026;
  cfg.vocabulary_size = 2500;
  cfg.num_topics = 10;
  cfg.topic_width = 30;
  cfg.mean_doc_length = 45.0;
  cfg.topic_share = 0.7;
  return corpus::SyntheticCorpus(cfg);
}

HdkEngineConfig Config(OverlayKind overlay, size_t threads) {
  HdkEngineConfig config;
  config.hdk.df_max = 9;
  config.hdk.very_frequent_threshold = 450;
  config.hdk.window = 8;
  config.hdk.s_max = 3;
  config.overlay = overlay;
  config.num_threads = threads;
  return config;
}

std::string SnapshotPath(const char* name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

std::vector<corpus::Query> TestQueries(const corpus::DocumentStore& store,
                                       size_t n) {
  corpus::CollectionStats stats(store);
  corpus::QueryGenConfig qcfg;
  qcfg.min_term_df = 3;
  return corpus::QueryGenerator(qcfg, store, stats).Generate(n);
}

/// Asserts full observable identity between two engines: exported index,
/// per-kind traffic, scalar accounting, and a ranked query batch.
void ExpectSameEngine(HdkSearchEngine& want, HdkSearchEngine& got,
                      const std::vector<corpus::Query>& queries) {
  EXPECT_EQ(want.num_peers(), got.num_peers());
  EXPECT_EQ(want.num_documents(), got.num_documents());
  EXPECT_EQ(want.StoredPostingsPerPeer(), got.StoredPostingsPerPeer());
  EXPECT_EQ(want.InsertedPostingsPerPeer(), got.InsertedPostingsPerPeer());
  EXPECT_EQ(FingerprintContents(want.global_index().ExportContents()),
            FingerprintContents(got.global_index().ExportContents()));
  EXPECT_EQ(FingerprintTraffic(*want.traffic()),
            FingerprintTraffic(*got.traffic()));
  // Queries on the restored engine produce bit-identical rankings AND
  // advance the traffic counters identically.
  const BatchResponse a = want.SearchBatch(queries, 10);
  const BatchResponse b = got.SearchBatch(queries, 10);
  EXPECT_EQ(FingerprintBatch(a), FingerprintBatch(b));
  EXPECT_EQ(FingerprintTraffic(*want.traffic()),
            FingerprintTraffic(*got.traffic()));
}

class SnapshotIdentityTest : public ::testing::TestWithParam<OverlayKind> {};

TEST_P(SnapshotIdentityTest, SaveLoadIsFingerprintIdentical) {
  corpus::SyntheticCorpus corpus = TestCorpus();
  corpus::DocumentStore store;
  corpus.FillStore(160, &store);
  const auto queries = TestQueries(store, 20);

  for (size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    const HdkEngineConfig config = Config(GetParam(), threads);
    auto built = HdkSearchEngine::Build(config, store, SplitEvenly(160, 4));
    ASSERT_TRUE(built.ok()) << built.status().ToString();

    const std::string path = SnapshotPath("snapshot_identity.hdks");
    ASSERT_TRUE((*built)->SaveSnapshot(path).ok());
    auto loaded = LoadEngineSnapshot(config, store, path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    ExpectSameEngine(**built, **loaded, queries);
  }
}

TEST_P(SnapshotIdentityTest, LoadsAcrossThreadCounts) {
  // A snapshot written by a parallel engine (sharded index) restores into
  // a serial one (single shard) and vice versa — entries are re-routed to
  // the loader's shard layout.
  corpus::SyntheticCorpus corpus = TestCorpus();
  corpus::DocumentStore store;
  corpus.FillStore(160, &store);
  const auto queries = TestQueries(store, 20);

  for (auto [save_threads, load_threads] :
       {std::pair<size_t, size_t>{4, 1}, std::pair<size_t, size_t>{1, 4}}) {
    SCOPED_TRACE("saved at " + std::to_string(save_threads) +
                 ", loaded at " + std::to_string(load_threads));
    auto built = HdkSearchEngine::Build(Config(GetParam(), save_threads),
                                        store, SplitEvenly(160, 4));
    ASSERT_TRUE(built.ok()) << built.status().ToString();

    const std::string path = SnapshotPath("snapshot_cross_threads.hdks");
    ASSERT_TRUE((*built)->SaveSnapshot(path).ok());
    // The config hash deliberately excludes the thread count, so this is
    // a compatible load, not a rejected one.
    auto loaded =
        LoadEngineSnapshot(Config(GetParam(), load_threads), store, path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    ExpectSameEngine(**built, **loaded, queries);
  }
}

TEST_P(SnapshotIdentityTest, RestoredEngineGrowsAndChurnsIdentically) {
  // load -> Grow -> churn must be indistinguishable from the same
  // lifecycle on an engine that was never persisted.
  corpus::SyntheticCorpus corpus = TestCorpus();
  corpus::DocumentStore store;
  corpus.FillStore(320, &store);

  const HdkEngineConfig config = Config(GetParam(), 1);
  auto built = HdkSearchEngine::Build(config, store, SplitEvenly(160, 4));
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  const std::string path = SnapshotPath("snapshot_lifecycle.hdks");
  ASSERT_TRUE((*built)->SaveSnapshot(path).ok());
  auto loaded = LoadEngineSnapshot(config, store, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  for (HdkSearchEngine* engine : {built->get(), loaded->get()}) {
    ASSERT_TRUE(
        engine->ApplyMembership(store, JoinWave(160, 2, 40)).ok());
    std::vector<MembershipEvent> churn;
    churn.push_back(MembershipEvent::Join(DocRange{240, 280}));
    churn.push_back(MembershipEvent::Leave(1));
    churn.push_back(MembershipEvent::Join(DocRange{280, 320}));
    ASSERT_TRUE(engine->ApplyMembership(store, churn).ok());
  }

  ExpectSameEngine(**built, **loaded, TestQueries(store, 20));

  // And a post-churn snapshot of the restored engine round-trips again:
  // persistence composes with the membership lifecycle in both orders.
  const std::string again = SnapshotPath("snapshot_lifecycle2.hdks");
  ASSERT_TRUE((*loaded)->SaveSnapshot(again).ok());
  auto reloaded = LoadEngineSnapshot(config, store, again);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ExpectSameEngine(**loaded, **reloaded, TestQueries(store, 10));
}

TEST_P(SnapshotIdentityTest, FactoryRestoreComposesDecorators) {
  corpus::SyntheticCorpus corpus = TestCorpus();
  corpus::DocumentStore store;
  corpus.FillStore(160, &store);
  const auto queries = TestQueries(store, 10);

  EngineConfig config;
  config.hdk = Config(GetParam(), 1).hdk;
  config.overlay = GetParam();
  config.num_threads = 1;

  auto built =
      MakeEngine("cached(hdk)", config, store, SplitEvenly(160, 4));
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  // SaveSnapshot passes through the decorator to the inner engine...
  const std::string path = SnapshotPath("snapshot_factory.hdks");
  ASSERT_TRUE((*built)->SaveSnapshot(path).ok());

  // ...and the factory restores the backend then re-applies the stack.
  auto loaded = MakeEngine("cached(hdk)", config, store, SnapshotFile{path});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->name(), "cached(hdk)");
  EXPECT_EQ((*built)->num_peers(), (*loaded)->num_peers());
  EXPECT_EQ(FingerprintBatch((*built)->SearchBatch(queries, 10)),
            FingerprintBatch((*loaded)->SearchBatch(queries, 10)));

  // Backends without snapshot support refuse cleanly.
  auto centralized =
      MakeEngine("centralized", config, store, SnapshotFile{path});
  ASSERT_FALSE(centralized.ok());
  EXPECT_EQ(centralized.status().code(), StatusCode::kUnimplemented);
}

INSTANTIATE_TEST_SUITE_P(
    BothOverlays, SnapshotIdentityTest,
    ::testing::Values(OverlayKind::kPGrid, OverlayKind::kChord),
    [](const ::testing::TestParamInfo<OverlayKind>& info) {
      return info.param == OverlayKind::kPGrid ? "pgrid" : "chord";
    });

}  // namespace
}  // namespace hdk::engine
