// Randomized cross-checks of the set-reconciliation sketches against
// brute-force set difference. The load-bearing guarantee is one-sided:
// a decode that REPORTS success must be the exact symmetric difference
// (correct-or-rejected — a fallback costs bandwidth, a wrong decode
// would corrupt a replica), so every ok outcome below is compared
// element-for-element with the brute-force answer, and the failure
// paths are checked to reject rather than lie.
#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sync/reconcile.h"
#include "sync/sketch.h"
#include "sync/sync.h"

namespace hdk::sync {
namespace {

// Two sets with a controlled overlap: `shared` digests in both, plus
// `only_a` / `only_b` unique tails. All digests distinct and nonzero.
struct SetPair {
  std::vector<uint64_t> a;
  std::vector<uint64_t> b;
  std::vector<uint64_t> only_a;  // sorted
  std::vector<uint64_t> only_b;  // sorted
};

SetPair MakeSets(Rng& rng, size_t shared, size_t only_a, size_t only_b) {
  std::set<uint64_t> used;
  auto draw = [&] {
    uint64_t v;
    do {
      v = rng.Next();
    } while (v == 0 || !used.insert(v).second);
    return v;
  };
  SetPair sets;
  for (size_t i = 0; i < shared; ++i) {
    const uint64_t v = draw();
    sets.a.push_back(v);
    sets.b.push_back(v);
  }
  for (size_t i = 0; i < only_a; ++i) {
    const uint64_t v = draw();
    sets.a.push_back(v);
    sets.only_a.push_back(v);
  }
  for (size_t i = 0; i < only_b; ++i) {
    const uint64_t v = draw();
    sets.b.push_back(v);
    sets.only_b.push_back(v);
  }
  std::sort(sets.only_a.begin(), sets.only_a.end());
  std::sort(sets.only_b.begin(), sets.only_b.end());
  return sets;
}

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// ---------------------------------------------------------------------
// Ibf

TEST(IbfTest, DecodesExactSymmetricDifference) {
  Rng rng(101);
  const SetPair sets = MakeSets(rng, /*shared=*/500, /*only_a=*/7,
                                /*only_b=*/5);
  Ibf a(/*cells=*/48, /*num_hashes=*/3, /*seed=*/42);
  Ibf b(/*cells=*/48, /*num_hashes=*/3, /*seed=*/42);
  for (uint64_t e : sets.a) a.Insert(e);
  for (uint64_t e : sets.b) b.Insert(e);
  a.Subtract(b);

  const Ibf::DecodeResult decoded = a.Decode();
  ASSERT_TRUE(decoded.ok);
  EXPECT_EQ(Sorted(decoded.plus), sets.only_a);
  EXPECT_EQ(Sorted(decoded.minus), sets.only_b);
}

TEST(IbfTest, EqualSetsDecodeEmpty) {
  Rng rng(102);
  const SetPair sets = MakeSets(rng, 300, 0, 0);
  Ibf a(16, 3, 7);
  Ibf b(16, 3, 7);
  for (uint64_t e : sets.a) a.Insert(e);
  for (uint64_t e : sets.b) b.Insert(e);
  a.Subtract(b);
  const Ibf::DecodeResult decoded = a.Decode();
  ASSERT_TRUE(decoded.ok);
  EXPECT_TRUE(decoded.plus.empty());
  EXPECT_TRUE(decoded.minus.empty());
}

TEST(IbfTest, OverfullSketchRejectsInsteadOfLying) {
  Rng rng(103);
  // 200 differing elements against a 24-cell budget cannot peel.
  const SetPair sets = MakeSets(rng, 100, 150, 50);
  Ibf a(24, 3, 9);
  Ibf b(24, 3, 9);
  for (uint64_t e : sets.a) a.Insert(e);
  for (uint64_t e : sets.b) b.Insert(e);
  a.Subtract(b);
  EXPECT_FALSE(a.Decode().ok);
}

TEST(IbfTest, RandomizedDecodeIsCorrectOrRejected) {
  Rng rng(104);
  size_t decoded_ok = 0;
  const size_t trials = 200;
  for (size_t t = 0; t < trials; ++t) {
    const size_t shared = rng.NextBounded(400);
    const size_t only_a = rng.NextBounded(30);
    const size_t only_b = rng.NextBounded(30);
    const uint32_t cells = 8 + static_cast<uint32_t>(rng.NextBounded(120));
    const SetPair sets = MakeSets(rng, shared, only_a, only_b);

    Ibf a(cells, 3, 1000 + t);
    Ibf b(cells, 3, 1000 + t);
    for (uint64_t e : sets.a) a.Insert(e);
    for (uint64_t e : sets.b) b.Insert(e);
    a.Subtract(b);
    const Ibf::DecodeResult decoded = a.Decode();
    if (!decoded.ok) continue;  // honest rejection is always allowed
    ++decoded_ok;
    EXPECT_EQ(Sorted(decoded.plus), sets.only_a) << "trial " << t;
    EXPECT_EQ(Sorted(decoded.minus), sets.only_b) << "trial " << t;
  }
  // The budgets above are generous often enough that a healthy decoder
  // succeeds frequently; a decoder that always rejects would trivially
  // pass the loop.
  EXPECT_GT(decoded_ok, trials / 3);
}

// ---------------------------------------------------------------------
// StrataEstimator

TEST(StrataEstimatorTest, EqualSetsEstimateZero) {
  Rng rng(105);
  const SetPair sets = MakeSets(rng, 1000, 0, 0);
  SyncConfig config;
  StrataEstimator a(config);
  StrataEstimator b(config);
  for (uint64_t e : sets.a) a.Insert(e);
  for (uint64_t e : sets.b) b.Insert(e);
  EXPECT_EQ(a.EstimateDiff(b), 0u);
}

TEST(StrataEstimatorTest, RandomizedEstimateTracksTrueDifference) {
  Rng rng(106);
  SyncConfig config;
  for (size_t t = 0; t < 40; ++t) {
    const size_t shared = rng.NextBounded(2000);
    const size_t diff_a = 1 + rng.NextBounded(200);
    const size_t diff_b = rng.NextBounded(200);
    const SetPair sets = MakeSets(rng, shared, diff_a, diff_b);
    const uint64_t truth = diff_a + diff_b;

    StrataEstimator a(config);
    StrataEstimator b(config);
    for (uint64_t e : sets.a) a.Insert(e);
    for (uint64_t e : sets.b) b.Insert(e);
    const uint64_t estimate = a.EstimateDiff(b);
    // A nonzero difference must never be estimated as zero (a zero
    // estimate would skip reconciliation and leave divergence in
    // place), and the estimate feeds a cell budget, so it has to stay
    // within a small constant factor of the truth.
    EXPECT_GT(estimate, 0u) << "trial " << t;
    EXPECT_GE(estimate * 8, truth) << "trial " << t << " truth " << truth;
    EXPECT_LE(estimate, truth * 8) << "trial " << t << " truth " << truth;
  }
}

// ---------------------------------------------------------------------
// PlanPairSync

TEST(PlanPairSyncTest, RandomizedPlansMatchBruteForce) {
  Rng rng(107);
  SyncConfig config;
  size_t planned_ok = 0;
  const size_t trials = 60;
  for (size_t t = 0; t < trials; ++t) {
    const size_t shared = rng.NextBounded(1500);
    const size_t missing = rng.NextBounded(40);
    const size_t extra = rng.NextBounded(40);
    const SetPair sets = MakeSets(rng, shared, missing, extra);

    const PairPlan plan = PlanPairSync(sets.a, sets.b, config);
    if (!plan.ok) continue;
    ++planned_ok;
    // ship = desired \ actual, drop = actual \ desired, both sorted.
    EXPECT_EQ(plan.ship, sets.only_a) << "trial " << t;
    EXPECT_EQ(plan.drop, sets.only_b) << "trial " << t;
    EXPECT_GT(plan.sketch_bytes, 0u);
    EXPECT_GT(plan.ibf_cells, 0u);
  }
  // With the default sizing (alpha = 1.6, k = 3) small differences
  // mostly decode (the rest fall back honestly); the fixed seed makes
  // this deterministic.
  EXPECT_GE(planned_ok, trials * 4 / 5);
}

TEST(PlanPairSyncTest, IdenticalSetsPlanEmptyDelta) {
  Rng rng(108);
  const SetPair sets = MakeSets(rng, 800, 0, 0);
  const PairPlan plan = PlanPairSync(sets.a, sets.b, SyncConfig{});
  ASSERT_TRUE(plan.ok);
  EXPECT_TRUE(plan.ship.empty());
  EXPECT_TRUE(plan.drop.empty());
}

TEST(PlanPairSyncTest, EmptyActualShipsEverything) {
  Rng rng(109);
  const SetPair sets = MakeSets(rng, 0, 50, 0);
  const PairPlan plan =
      PlanPairSync(sets.a, std::vector<uint64_t>{}, SyncConfig{});
  ASSERT_TRUE(plan.ok);
  EXPECT_EQ(plan.ship, sets.only_a);
  EXPECT_TRUE(plan.drop.empty());
}

TEST(PlanPairSyncTest, OversizedDifferenceFallsBackBeforeTheIbfLeg) {
  Rng rng(110);
  const SetPair sets = MakeSets(rng, 100, 400, 400);
  SyncConfig config;
  config.max_cells = 64;  // estimate * alpha >> 64
  const PairPlan plan = PlanPairSync(sets.a, sets.b, config);
  EXPECT_FALSE(plan.ok);
  EXPECT_EQ(plan.ibf_cells, 0u);  // rejected before building the IBF
  EXPECT_TRUE(plan.ship.empty());
  EXPECT_TRUE(plan.drop.empty());
}

TEST(PlanPairSyncTest, RejectedPlansNeverCarryADelta) {
  // Sweep adversarially tight budgets: whatever the outcome, a plan is
  // either exactly right or empty-and-rejected — never wrong.
  Rng rng(111);
  SyncConfig config;
  config.min_cells = 4;
  size_t rejected = 0;
  for (size_t t = 0; t < 120; ++t) {
    config.max_cells = 4 + static_cast<uint32_t>(rng.NextBounded(60));
    const size_t diff = 1 + rng.NextBounded(120);
    const SetPair sets =
        MakeSets(rng, rng.NextBounded(300), diff, rng.NextBounded(60));
    const PairPlan plan = PlanPairSync(sets.a, sets.b, config);
    if (plan.ok) {
      EXPECT_EQ(plan.ship, sets.only_a) << "trial " << t;
      EXPECT_EQ(plan.drop, sets.only_b) << "trial " << t;
    } else {
      ++rejected;
      EXPECT_TRUE(plan.ship.empty()) << "trial " << t;
      EXPECT_TRUE(plan.drop.empty()) << "trial " << t;
    }
  }
  // The tight budgets must actually exercise the fallback path.
  EXPECT_GT(rejected, 0u);
}

}  // namespace
}  // namespace hdk::sync
