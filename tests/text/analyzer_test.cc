#include "text/analyzer.h"

#include <gtest/gtest.h>

namespace hdk::text {
namespace {

TEST(AnalyzerTest, FullPipeline) {
  Analyzer a;
  auto tokens = a.AnalyzeToStrings("The peers are indexing the documents");
  // "the"/"are" are stop words; remaining words are stemmed.
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"peer", "index", "document"}));
}

TEST(AnalyzerTest, StopwordRemovalOnly) {
  AnalyzerOptions opt;
  opt.stem = false;
  Analyzer a(opt);
  EXPECT_EQ(a.AnalyzeToStrings("the indexing of documents"),
            (std::vector<std::string>{"indexing", "documents"}));
}

TEST(AnalyzerTest, StemmingOnly) {
  AnalyzerOptions opt;
  opt.remove_stopwords = false;
  Analyzer a(opt);
  EXPECT_EQ(a.AnalyzeToStrings("the indexing"),
            (std::vector<std::string>{"the", "index"}));
}

TEST(AnalyzerTest, InternsConsistently) {
  Analyzer a;
  Vocabulary vocab;
  auto ids1 = a.Analyze("peers indexing documents", &vocab);
  auto ids2 = a.Analyze("documents indexing peers", &vocab);
  ASSERT_EQ(ids1.size(), 3u);
  ASSERT_EQ(ids2.size(), 3u);
  EXPECT_EQ(ids1[0], ids2[2]);  // "peer"
  EXPECT_EQ(ids1[1], ids2[1]);  // "index"
  EXPECT_EQ(ids1[2], ids2[0]);  // "document"
}

TEST(AnalyzerTest, AppendsToOutput) {
  Analyzer a;
  Vocabulary vocab;
  std::vector<TermId> out;
  a.Analyze("peer", &vocab, &out);
  a.Analyze("network", &vocab, &out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_NE(out[0], out[1]);
}

TEST(AnalyzerTest, QueryDropsUnknownTerms) {
  Analyzer a;
  Vocabulary vocab;
  a.Analyze("peers index documents", &vocab);
  auto q = a.AnalyzeQuery("peers query unknownword", vocab);
  // "peer" is known; "queri"/"unknownword" were never interned.
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(vocab.TermOf(q[0]), "peer");
  // Query analysis must not grow the vocabulary.
  EXPECT_EQ(vocab.size(), 3u);
}

TEST(AnalyzerTest, QueryAppliesSamePipeline) {
  Analyzer a;
  Vocabulary vocab;
  auto doc_ids = a.Analyze("connectivity", &vocab);
  auto q = a.AnalyzeQuery("the connectivity", vocab);
  ASSERT_EQ(doc_ids.size(), 1u);
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(doc_ids[0], q[0]);
}

TEST(AnalyzerTest, PositionsAreContiguousAfterStopwordRemoval) {
  // The window model counts positions over the ANALYZED sequence.
  Analyzer a;
  Vocabulary vocab;
  auto ids = a.Analyze("alpha the the the beta", &vocab);
  EXPECT_EQ(ids.size(), 2u);  // "alpha", "beta" now adjacent
}

}  // namespace
}  // namespace hdk::text
