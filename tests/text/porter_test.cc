#include "text/porter_stemmer.h"

#include <gtest/gtest.h>

namespace hdk::text {
namespace {

struct Vec {
  const char* in;
  const char* out;
};

// Examples from M.F. Porter, "An algorithm for suffix stripping" (1980),
// covering every rule of every step.
const Vec kStep1aVectors[] = {
    {"caresses", "caress"}, {"ponies", "poni"},   {"ties", "ti"},
    {"caress", "caress"},   {"cats", "cat"},
};

const Vec kStep1bVectors[] = {
    {"feed", "feed"},         {"agreed", "agre"},
    {"plastered", "plaster"}, {"bled", "bled"},
    {"motoring", "motor"},    {"sing", "sing"},
    {"conflated", "conflat"}, {"troubled", "troubl"},
    {"sized", "size"},        {"hopping", "hop"},
    {"tanned", "tan"},        {"falling", "fall"},
    {"hissing", "hiss"},      {"fizzed", "fizz"},
    {"failing", "fail"},      {"filing", "file"},
};

const Vec kStep1cVectors[] = {
    {"happy", "happi"},
    {"sky", "sky"},
};

const Vec kStep2Vectors[] = {
    {"relational", "relat"},       {"conditional", "condit"},
    {"rational", "ration"},        {"valenci", "valenc"},
    {"hesitanci", "hesit"},        {"digitizer", "digit"},
    {"conformabli", "conform"},    {"radicalli", "radic"},
    {"differentli", "differ"},     {"vileli", "vile"},
    {"analogousli", "analog"},     {"vietnamization", "vietnam"},
    {"predication", "predic"},     {"operator", "oper"},
    {"feudalism", "feudal"},       {"decisiveness", "decis"},
    {"hopefulness", "hope"},       {"callousness", "callous"},
    {"formaliti", "formal"},       {"sensitiviti", "sensit"},
    {"sensibiliti", "sensibl"},
};

const Vec kStep3Vectors[] = {
    {"triplicate", "triplic"}, {"formative", "form"},
    {"formalize", "formal"},   {"electriciti", "electr"},
    {"electrical", "electr"},  {"hopeful", "hope"},
    {"goodness", "good"},
};

const Vec kStep4Vectors[] = {
    {"revival", "reviv"},       {"allowance", "allow"},
    {"inference", "infer"},     {"airliner", "airlin"},
    {"gyroscopic", "gyroscop"}, {"adjustable", "adjust"},
    {"defensible", "defens"},   {"irritant", "irrit"},
    {"replacement", "replac"},  {"adjustment", "adjust"},
    {"dependent", "depend"},    {"adoption", "adopt"},
    {"homologou", "homolog"},   {"communism", "commun"},
    {"activate", "activ"},      {"angulariti", "angular"},
    {"homologous", "homolog"},  {"effective", "effect"},
    {"bowdlerize", "bowdler"},
};

const Vec kStep5Vectors[] = {
    {"probate", "probat"},
    {"rate", "rate"},
    {"cease", "ceas"},
    {"controll", "control"},
    {"roll", "roll"},
};

class PorterVectorTest : public ::testing::TestWithParam<Vec> {};

TEST_P(PorterVectorTest, StemsAsExpected) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem(GetParam().in), GetParam().out)
      << "input: " << GetParam().in;
}

INSTANTIATE_TEST_SUITE_P(Step1a, PorterVectorTest,
                         ::testing::ValuesIn(kStep1aVectors));
INSTANTIATE_TEST_SUITE_P(Step1b, PorterVectorTest,
                         ::testing::ValuesIn(kStep1bVectors));
INSTANTIATE_TEST_SUITE_P(Step1c, PorterVectorTest,
                         ::testing::ValuesIn(kStep1cVectors));
INSTANTIATE_TEST_SUITE_P(Step2, PorterVectorTest,
                         ::testing::ValuesIn(kStep2Vectors));
INSTANTIATE_TEST_SUITE_P(Step3, PorterVectorTest,
                         ::testing::ValuesIn(kStep3Vectors));
INSTANTIATE_TEST_SUITE_P(Step4, PorterVectorTest,
                         ::testing::ValuesIn(kStep4Vectors));
INSTANTIATE_TEST_SUITE_P(Step5, PorterVectorTest,
                         ::testing::ValuesIn(kStep5Vectors));

TEST(PorterStemmerTest, ShortWordsUnchanged) {
  PorterStemmer s;
  EXPECT_EQ(s.Stem(""), "");
  EXPECT_EQ(s.Stem("a"), "a");
  EXPECT_EQ(s.Stem("is"), "is");
  EXPECT_EQ(s.Stem("by"), "by");
}

TEST(PorterStemmerTest, IdempotentOnCommonStems) {
  // Stemming a stem should usually be a no-op; check common IR terms.
  PorterStemmer s;
  for (const char* w : {"comput", "retriev", "network", "index"}) {
    EXPECT_EQ(s.Stem(w), w);
  }
}

TEST(PorterStemmerTest, MergesInflections) {
  PorterStemmer s;
  EXPECT_EQ(s.Stem("retrieval"), s.Stem("retrieval"));
  EXPECT_EQ(s.Stem("indexing"), s.Stem("indexed"));
  EXPECT_EQ(s.Stem("connected"), s.Stem("connecting"));
  EXPECT_EQ(s.Stem("connection"), s.Stem("connections"));
}

TEST(PorterStemmerTest, InPlaceMatchesByValue) {
  PorterStemmer s;
  std::string w = "generalizations";
  std::string by_value = s.Stem(w);
  s.StemInPlace(&w);
  EXPECT_EQ(w, by_value);
}

}  // namespace
}  // namespace hdk::text
