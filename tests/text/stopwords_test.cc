#include "text/stopwords.h"

#include <gtest/gtest.h>

namespace hdk::text {
namespace {

TEST(StopwordsTest, DefaultListHas250Words) {
  // The paper removes "250 common English stop words".
  EXPECT_EQ(DefaultStopwords().size(), 250u);
}

TEST(StopwordsTest, CommonWordsPresent) {
  const StopwordSet& sw = DefaultStopwords();
  for (const char* w :
       {"the", "a", "an", "and", "or", "of", "to", "in", "is", "are",
        "was", "were", "be", "been", "this", "that", "with", "without"}) {
    EXPECT_TRUE(sw.Contains(w)) << w;
  }
}

TEST(StopwordsTest, ContentWordsAbsent) {
  const StopwordSet& sw = DefaultStopwords();
  for (const char* w :
       {"peer", "index", "retrieval", "network", "key", "document",
        "wikipedia", "bandwidth"}) {
    EXPECT_FALSE(sw.Contains(w)) << w;
  }
}

TEST(StopwordsTest, CaseSensitiveByContract) {
  // Input is lowercased by the tokenizer before the stop list is consulted.
  EXPECT_TRUE(DefaultStopwords().Contains("the"));
  EXPECT_FALSE(DefaultStopwords().Contains("The"));
}

TEST(StopwordsTest, CustomList) {
  StopwordSet custom{"foo", "bar"};
  EXPECT_EQ(custom.size(), 2u);
  EXPECT_TRUE(custom.Contains("foo"));
  EXPECT_FALSE(custom.Contains("the"));
}

TEST(StopwordsTest, SharedInstanceIsStable) {
  const StopwordSet& a = DefaultStopwords();
  const StopwordSet& b = DefaultStopwords();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace hdk::text
