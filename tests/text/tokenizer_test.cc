#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace hdk::text {
namespace {

std::vector<std::string> Tok(std::string_view s, TokenizerOptions opt = {}) {
  return Tokenizer(opt).Tokenize(s);
}

TEST(TokenizerTest, EmptyInput) {
  EXPECT_TRUE(Tok("").empty());
  EXPECT_TRUE(Tok("   \t\n ").empty());
  EXPECT_TRUE(Tok("!!! ---").empty());
}

TEST(TokenizerTest, SimpleWords) {
  EXPECT_EQ(Tok("peer to peer retrieval"),
            (std::vector<std::string>{"peer", "to", "peer", "retrieval"}));
}

TEST(TokenizerTest, Lowercases) {
  EXPECT_EQ(Tok("Highly Discriminative KEYS"),
            (std::vector<std::string>{"highly", "discriminative", "keys"}));
}

TEST(TokenizerTest, SplitsOnPunctuation) {
  EXPECT_EQ(Tok("index;retrieval,search."),
            (std::vector<std::string>{"index", "retrieval", "search"}));
}

TEST(TokenizerTest, ApostropheJoinsContractions) {
  EXPECT_EQ(Tok("don't stop"), (std::vector<std::string>{"dont", "stop"}));
  EXPECT_EQ(Tok("the peer's index"),
            (std::vector<std::string>{"the", "peers", "index"}));
}

TEST(TokenizerTest, TrailingApostropheIsSeparator) {
  EXPECT_EQ(Tok("peers' data"),
            (std::vector<std::string>{"peers", "data"}));
}

TEST(TokenizerTest, KeepsDigitsByDefault) {
  EXPECT_EQ(Tok("icde 2007 p2p"),
            (std::vector<std::string>{"icde", "2007", "p2p"}));
}

TEST(TokenizerTest, DigitsCanBeDisabled) {
  TokenizerOptions opt;
  opt.keep_digits = false;
  EXPECT_EQ(Tok("icde 2007 p2p", opt),
            (std::vector<std::string>{"icde", "p", "p"}));
}

TEST(TokenizerTest, MinLengthFilter) {
  TokenizerOptions opt;
  opt.min_token_length = 3;
  EXPECT_EQ(Tok("a to the sea", opt),
            (std::vector<std::string>{"the", "sea"}));
}

TEST(TokenizerTest, MaxLengthTruncates) {
  TokenizerOptions opt;
  opt.max_token_length = 4;
  EXPECT_EQ(Tok("discriminative", opt),
            (std::vector<std::string>{"disc"}));
}

TEST(TokenizerTest, UnicodeBytesActAsSeparators) {
  // Non-ASCII bytes split tokens (ASCII-only model, documented).
  auto tokens = Tok("caf\xc3\xa9 culture");
  EXPECT_EQ(tokens, (std::vector<std::string>{"caf", "culture"}));
}

TEST(TokenizerTest, AppendMode) {
  Tokenizer t;
  std::vector<std::string> out{"seed"};
  t.Tokenize("more words", &out);
  EXPECT_EQ(out, (std::vector<std::string>{"seed", "more", "words"}));
}

}  // namespace
}  // namespace hdk::text
