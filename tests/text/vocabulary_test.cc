#include "text/vocabulary.h"

#include <gtest/gtest.h>

namespace hdk::text {
namespace {

TEST(VocabularyTest, InternAssignsDenseIds) {
  Vocabulary v;
  EXPECT_EQ(v.Intern("alpha"), 0u);
  EXPECT_EQ(v.Intern("beta"), 1u);
  EXPECT_EQ(v.Intern("gamma"), 2u);
  EXPECT_EQ(v.size(), 3u);
}

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary v;
  TermId a = v.Intern("alpha");
  EXPECT_EQ(v.Intern("alpha"), a);
  EXPECT_EQ(v.size(), 1u);
}

TEST(VocabularyTest, LookupKnownAndUnknown) {
  Vocabulary v;
  TermId a = v.Intern("alpha");
  EXPECT_EQ(v.Lookup("alpha"), a);
  EXPECT_EQ(v.Lookup("missing"), kInvalidTerm);
}

TEST(VocabularyTest, TermOfRoundTrips) {
  Vocabulary v;
  TermId a = v.Intern("alpha");
  TermId b = v.Intern("beta");
  EXPECT_EQ(v.TermOf(a), "alpha");
  EXPECT_EQ(v.TermOf(b), "beta");
}

TEST(VocabularyTest, EmptyState) {
  Vocabulary v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  v.Intern("x");
  EXPECT_FALSE(v.empty());
}

TEST(VocabularyTest, ManyTermsStayConsistent) {
  Vocabulary v;
  for (int i = 0; i < 1000; ++i) {
    v.Intern("term" + std::to_string(i));
  }
  EXPECT_EQ(v.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    std::string t = "term" + std::to_string(i);
    TermId id = v.Lookup(t);
    ASSERT_NE(id, kInvalidTerm);
    EXPECT_EQ(v.TermOf(id), t);
  }
}

}  // namespace
}  // namespace hdk::text
