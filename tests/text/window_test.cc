#include "text/window.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace hdk::text {
namespace {

// Brute-force oracle: does any length-w contiguous range contain all key
// terms?
bool BruteCoOccurs(const std::vector<TermId>& tokens, uint32_t w,
                   std::vector<TermId> key) {
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());
  if (key.empty()) return true;
  for (size_t start = 0; start < tokens.size(); ++start) {
    size_t end = std::min(tokens.size(), start + w);
    size_t found = 0;
    for (TermId k : key) {
      for (size_t i = start; i < end; ++i) {
        if (tokens[i] == k) {
          ++found;
          break;
        }
      }
    }
    if (found == key.size()) return true;
  }
  return false;
}

TEST(WindowTailTest, TracksDistinctTerms) {
  WindowTail tail(4);  // keeps 3 positions
  tail.Push(1);
  tail.Push(2);
  tail.Push(2);
  EXPECT_EQ(tail.distinct().size(), 2u);
  EXPECT_TRUE(tail.Contains(1));
  EXPECT_TRUE(tail.Contains(2));

  tail.Push(3);  // evicts the 1 at the oldest position
  EXPECT_FALSE(tail.Contains(1));
  EXPECT_TRUE(tail.Contains(2));
  EXPECT_TRUE(tail.Contains(3));
  EXPECT_EQ(tail.distinct().size(), 2u);
}

TEST(WindowTailTest, DuplicateSurvivesPartialEviction) {
  WindowTail tail(4);
  tail.Push(7);
  tail.Push(7);
  tail.Push(1);
  tail.Push(2);  // evicts first 7; second 7 still inside
  EXPECT_TRUE(tail.Contains(7));
  tail.Push(3);  // evicts second 7
  EXPECT_FALSE(tail.Contains(7));
}

TEST(WindowTailTest, HolesAdvancePositions) {
  WindowTail tail(3);  // keeps 2 positions
  tail.Push(5);
  tail.Push(kInvalidTerm);
  EXPECT_TRUE(tail.Contains(5));
  tail.Push(kInvalidTerm);  // 5 falls out
  EXPECT_FALSE(tail.Contains(5));
  EXPECT_TRUE(tail.distinct().empty());
}

TEST(WindowTailTest, ResetClears) {
  WindowTail tail(5);
  tail.Push(1);
  tail.Push(2);
  tail.Reset();
  EXPECT_TRUE(tail.distinct().empty());
  EXPECT_FALSE(tail.Contains(1));
  tail.Push(9);
  EXPECT_TRUE(tail.Contains(9));
}

TEST(WindowTailTest, MatchesSlidingSemantics) {
  // After pushing positions 0..i, the tail holds positions [i-w+1, i-1]...
  // meaning: pushing t at each i, the PREVIOUS w-1 terms are queryable.
  const uint32_t w = 3;
  std::vector<TermId> tokens{10, 20, 30, 40, 50};
  WindowTail tail(w);
  std::vector<std::vector<TermId>> tails_seen;
  for (TermId t : tokens) {
    std::vector<TermId> d = tail.distinct();
    std::sort(d.begin(), d.end());
    tails_seen.push_back(d);
    tail.Push(t);
  }
  EXPECT_EQ(tails_seen[0], (std::vector<TermId>{}));
  EXPECT_EQ(tails_seen[1], (std::vector<TermId>{10}));
  EXPECT_EQ(tails_seen[2], (std::vector<TermId>{10, 20}));
  EXPECT_EQ(tails_seen[3], (std::vector<TermId>{20, 30}));
  EXPECT_EQ(tails_seen[4], (std::vector<TermId>{30, 40}));
}

TEST(WindowCoOccursTest, SingleTerm) {
  std::vector<TermId> tokens{1, 2, 3};
  EXPECT_TRUE(WindowCoOccurs(tokens, 2, std::vector<TermId>{2}));
  EXPECT_FALSE(WindowCoOccurs(tokens, 2, std::vector<TermId>{9}));
}

TEST(WindowCoOccursTest, EmptyKeyTriviallyTrue) {
  std::vector<TermId> tokens{1};
  EXPECT_TRUE(WindowCoOccurs(tokens, 2, std::vector<TermId>{}));
}

TEST(WindowCoOccursTest, PairWithinAndBeyondWindow) {
  std::vector<TermId> tokens{1, 9, 9, 9, 2};
  // Distance between 1 and 2 is 4 positions; window 5 covers both.
  EXPECT_TRUE(WindowCoOccurs(tokens, 5, std::vector<TermId>{1, 2}));
  EXPECT_FALSE(WindowCoOccurs(tokens, 4, std::vector<TermId>{1, 2}));
}

TEST(WindowCoOccursTest, DuplicateKeyTermsActAsSet) {
  std::vector<TermId> tokens{1, 2};
  EXPECT_TRUE(WindowCoOccurs(tokens, 2, std::vector<TermId>{1, 1, 2}));
}

TEST(WindowCoOccursTest, TripleNeedsAllThree) {
  std::vector<TermId> tokens{1, 2, 4, 5, 3};
  EXPECT_TRUE(WindowCoOccurs(tokens, 5, std::vector<TermId>{1, 2, 3}));
  EXPECT_FALSE(WindowCoOccurs(tokens, 3, std::vector<TermId>{1, 2, 3}));
  EXPECT_FALSE(WindowCoOccurs(tokens, 5, std::vector<TermId>{1, 2, 7}));
}

TEST(CountWindowsTest, CountsEndPositions) {
  std::vector<TermId> tokens{1, 2, 1, 2};
  // Windows of size 2 ending at positions 1,2,3 contain {1,2}.
  EXPECT_EQ(CountCoOccurrenceWindows(tokens, 2,
                                     std::vector<TermId>{1, 2}),
            3u);
}

TEST(CountWindowsTest, ZeroWhenAbsent) {
  std::vector<TermId> tokens{1, 1, 1};
  EXPECT_EQ(CountCoOccurrenceWindows(tokens, 3,
                                     std::vector<TermId>{1, 2}),
            0u);
}

// Property test: WindowCoOccurs agrees with the brute-force oracle on
// random token streams.
class WindowPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>> {};

TEST_P(WindowPropertyTest, AgreesWithBruteForce) {
  const uint32_t w = std::get<0>(GetParam());
  const uint32_t alphabet = std::get<1>(GetParam());
  Rng rng(w * 1000 + alphabet);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t len = 1 + rng.NextBounded(60);
    std::vector<TermId> tokens(len);
    for (auto& t : tokens) {
      t = static_cast<TermId>(rng.NextBounded(alphabet));
    }
    const size_t key_size = 1 + rng.NextBounded(3);
    std::vector<TermId> key(key_size);
    for (auto& k : key) {
      k = static_cast<TermId>(rng.NextBounded(alphabet));
    }
    EXPECT_EQ(WindowCoOccurs(tokens, w, key),
              BruteCoOccurs(tokens, w, key))
        << "w=" << w << " len=" << len;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WindowPropertyTest,
    ::testing::Combine(::testing::Values(2u, 3u, 5u, 10u, 20u),
                       ::testing::Values(3u, 8u, 30u)));

}  // namespace
}  // namespace hdk::text
