#include "zipf/model.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace hdk::zipf {
namespace {

// Builds an exact synthetic rank-frequency curve z(r) = C * r^-a.
std::vector<Freq> ExactZipf(double scale, double skew, size_t n) {
  std::vector<Freq> rf;
  rf.reserve(n);
  for (size_t r = 1; r <= n; ++r) {
    rf.push_back(static_cast<Freq>(
        std::llround(scale * std::pow(static_cast<double>(r), -skew))));
  }
  return rf;
}

TEST(FitZipfTest, RecoversParametersOnExactData) {
  auto rf = ExactZipf(1e6, 1.5, 2000);
  auto fit = FitZipf(rf);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->skew, 1.5, 0.05);
  EXPECT_NEAR(std::log(fit->scale), std::log(1e6), 0.2);
  EXPECT_GT(fit->r_squared, 0.99);
}

TEST(FitZipfTest, RecoversShallowSkew) {
  auto rf = ExactZipf(5e5, 0.9, 3000);
  auto fit = FitZipf(rf);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->skew, 0.9, 0.05);
}

TEST(FitZipfTest, FrequencyFloorExcludesTail) {
  auto rf = ExactZipf(1000, 1.0, 5000);  // long tail of 1s and 0s
  ZipfFitOptions opt;
  opt.min_frequency = 2;
  auto fit = FitZipf(rf, opt);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit->points_used, 1000u);
}

TEST(FitZipfTest, MaxRanksLimitsPoints) {
  auto rf = ExactZipf(1e6, 1.2, 2000);
  ZipfFitOptions opt;
  opt.max_ranks = 100;
  auto fit = FitZipf(rf, opt);
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(fit->points_used, 100u);
}

TEST(FitZipfTest, RejectsTooFewPoints) {
  std::vector<Freq> rf{10, 5};
  EXPECT_FALSE(FitZipf(rf).ok());
}

TEST(ZipfFitTest, FrequencyAndRankOfAreInverse) {
  ZipfFit fit;
  fit.skew = 1.5;
  fit.scale = 1e6;
  double f = fit.Frequency(100.0);
  EXPECT_NEAR(fit.RankOf(f), 100.0, 1e-6);
}

TEST(TheoremTest, FrequentProbabilityMatchesClosedForm) {
  // Theorem 2: P_f = (1 - (Fr/Ff)^e) / (1 - (1/Ff)^e), e = (a-1)/a.
  const double a = 1.5, fr = 400, ff = 100000;
  auto p = FrequentProbability(a, fr, ff);
  ASSERT_TRUE(p.ok());
  const double e = (a - 1.0) / a;
  const double expected =
      (1.0 - std::pow(fr / ff, e)) / (1.0 - std::pow(1.0 / ff, e));
  EXPECT_NEAR(*p, expected, 1e-12);
  EXPECT_GT(*p, 0.0);
  EXPECT_LT(*p, 1.0);
}

TEST(TheoremTest, PaperParametersGiveHighPf) {
  // The paper reports P_f,1 = 0.8 for a = 1.5 (fitted on Wikipedia).
  auto p = FrequentProbability(1.5, 400, 100000);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.8, 0.1);
}

TEST(TheoremTest, FrequentProbabilityIndependentOfScale) {
  // P_f does not depend on C(l) — the key scalability property.
  auto p1 = FrequentProbability(1.5, 100, 10000);
  auto p2 = FrequentProbability(1.5, 100, 10000);
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p1, *p2);
}

TEST(TheoremTest, VeryFrequentProbabilityGrowsWithScale) {
  // Theorem 1: P_vf depends on l (through C(l)) and grows as the
  // collection grows.
  auto small = VeryFrequentProbability(1.5, 1e6, 1e5);
  auto large = VeryFrequentProbability(1.5, 1e9, 1e5);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(*large, *small);
  EXPECT_GE(*small, 0.0);
  EXPECT_LT(*large, 1.0);
}

TEST(TheoremTest, VeryFrequentZeroWhenCutoffAboveScale) {
  auto p = VeryFrequentProbability(1.5, 1e4, 1e6);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, 0.0);
}

TEST(TheoremTest, RejectsInvalidArguments) {
  EXPECT_FALSE(FrequentProbability(0.9, 10, 100).ok());   // skew <= 1
  EXPECT_FALSE(FrequentProbability(1.5, 0, 100).ok());    // Fr <= 0
  EXPECT_FALSE(FrequentProbability(1.5, 200, 100).ok());  // Fr > Ff
  EXPECT_FALSE(VeryFrequentProbability(1.0, 1e6, 1e5).ok());
  EXPECT_FALSE(VeryFrequentProbability(1.5, 0.5, 1e5).ok());
}

TEST(BinomialTest, SmallValues) {
  EXPECT_EQ(Binomial(19, 1), 19.0);
  EXPECT_EQ(Binomial(19, 2), 171.0);
  EXPECT_EQ(Binomial(4, 2), 6.0);
  EXPECT_EQ(Binomial(5, 0), 1.0);
  EXPECT_EQ(Binomial(5, 5), 1.0);
  EXPECT_EQ(Binomial(3, 4), 0.0);
}

TEST(IndexSizeTest, Level1BoundedBySampleSize) {
  // IS_1 <= D (Section 4.1).
  EXPECT_EQ(IndexSizeEstimate(1000000, 0.8, 20, 1), 1000000.0);
}

TEST(IndexSizeTest, MatchesTheorem3Formula) {
  // IS_s = D * P_f,(s-1)^2 * binom(w-1, s-1).
  const uint64_t d = 3000000;
  const double pf = 0.8;
  EXPECT_NEAR(IndexSizeEstimate(d, pf, 20, 2),
              static_cast<double>(d) * 0.64 * 19.0, 1e-6);
  EXPECT_NEAR(IndexSizeEstimate(d, 0.257, 20, 3),
              static_cast<double>(d) * 0.257 * 0.257 * 171.0, 1e-3);
}

TEST(IndexSizeTest, PaperRatios) {
  // Paper Section 5: with a_1=1.5 (P_f,1 = 0.8) the estimated IS_2/D is
  // 12.16, and with P_f,2 = 0.257 the estimated IS_3/D is 11.35.
  EXPECT_NEAR(IndexSizeEstimate(1, 0.8, 20, 2), 12.16, 0.01);
  EXPECT_NEAR(IndexSizeEstimate(1, 0.257, 20, 3), 11.29, 0.2);
}

TEST(EvaluateZipfCurveTest, ProducesDecreasingCurve) {
  auto curve = EvaluateZipfCurve(1.5, 1000.0, 50);
  ASSERT_EQ(curve.size(), 50u);
  EXPECT_EQ(curve[0], 1000.0);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LT(curve[i], curve[i - 1]);
  }
}

}  // namespace
}  // namespace hdk::zipf
