#include "zipf/traffic_model.h"

#include <gtest/gtest.h>

namespace hdk::zipf {
namespace {

TEST(TrafficModelTest, DefaultsValid) {
  EXPECT_TRUE(TrafficModelParams{}.Validate().ok());
}

TEST(TrafficModelTest, RejectsBadParams) {
  TrafficModelParams p;
  p.st_postings_per_doc = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = TrafficModelParams{};
  p.hdk_query_postings = -1;
  EXPECT_FALSE(p.Validate().ok());
  p = TrafficModelParams{};
  p.queries_per_period = -5;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(TrafficModelTest, PaperRatioAtWikipediaScale) {
  // Paper Section 5 / Figure 8: "for the whole Wikipedia collection
  // (653,546 documents), the HDK approach would generate 20 times less
  // traffic than the distributed single-term approach".
  TrafficModelParams p;  // paper-calibrated defaults
  TrafficEstimate e = EstimateTraffic(p, 653546);
  EXPECT_GT(e.ratio, 15.0);
  EXPECT_LT(e.ratio, 30.0);
}

TEST(TrafficModelTest, PaperRatioAtBillionDocs) {
  // "...while for 1 billion documents the ratio is around 42."
  TrafficModelParams p;
  TrafficEstimate e = EstimateTraffic(p, 1000000000ULL);
  EXPECT_GT(e.ratio, 35.0);
  EXPECT_LT(e.ratio, 50.0);
}

TEST(TrafficModelTest, RatioGrowsWithCollectionSize) {
  // ST retrieval grows linearly, HDK retrieval is bounded: the advantage
  // widens with the collection.
  TrafficModelParams p;
  double prev = 0.0;
  for (uint64_t m : {1000ULL, 100000ULL, 10000000ULL, 1000000000ULL}) {
    TrafficEstimate e = EstimateTraffic(p, m);
    EXPECT_GT(e.ratio, prev);
    prev = e.ratio;
  }
}

TEST(TrafficModelTest, RatioSaturates) {
  // As M -> inf the ratio approaches the slope quotient
  // (st_idx + Q*st_q) / hdk_idx.
  TrafficModelParams p;
  const double limit =
      (p.st_postings_per_doc +
       p.queries_per_period * p.st_query_postings_per_doc) /
      p.hdk_postings_per_doc;
  TrafficEstimate e = EstimateTraffic(p, 1ULL << 50);
  EXPECT_NEAR(e.ratio, limit, limit * 0.01);
}

TEST(TrafficModelTest, HdkIndexingDominatesAtSmallScale) {
  // Indexing with HDKs is MORE expensive; without queries the ST approach
  // wins — the crossover only comes from retrieval volume.
  TrafficModelParams p;
  p.queries_per_period = 0;
  TrafficEstimate e = EstimateTraffic(p, 1000000);
  EXPECT_LT(e.ratio, 1.0);
}

TEST(TrafficModelTest, SweepEvaluatesAllPoints) {
  TrafficModelParams p;
  std::vector<uint64_t> ms{100, 1000, 10000};
  auto sweep = EstimateTrafficSweep(p, ms);
  ASSERT_EQ(sweep.size(), 3u);
  for (size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_EQ(sweep[i].num_documents, ms[i]);
    EXPECT_GT(sweep[i].st_total, 0.0);
    EXPECT_GT(sweep[i].hdk_total, 0.0);
  }
}

TEST(TrafficModelTest, TotalsAreMonotoneInDocuments) {
  TrafficModelParams p;
  TrafficEstimate a = EstimateTraffic(p, 1000);
  TrafficEstimate b = EstimateTraffic(p, 2000);
  EXPECT_GT(b.st_total, a.st_total);
  EXPECT_GT(b.hdk_total, a.hdk_total);
}

}  // namespace
}  // namespace hdk::zipf
