// snapshot_inspect: dump the header, section table and global-index
// shape of an engine snapshot file, without needing the config or corpus
// it was built from.
//
//   snapshot_inspect [-r N] <file.hdks>
//
// Everything printed comes from the file alone; the same checksum
// validation a load performs runs first, so this doubles as an integrity
// check (`snapshot_inspect file && echo ok`). With -r N (a replication
// factor > 1 — runtime config, not persisted), the writer's overlay is
// reconstructed and each peer's replica-holder load is recomputed from
// the published key hashes, exactly as the engine derives its replicas.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "engine/engine_snapshot.h"

int main(int argc, char** argv) {
  using namespace hdk;
  SetLogLevel(LogLevel::kWarning);

  uint32_t replication = 1;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-r") == 0 && i + 1 < argc) {
      replication = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
      if (replication < 1) replication = 1;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: %s [-r N] <snapshot.hdks>\n", argv[0]);
    return 2;
  }

  auto described = engine::DescribeEngineSnapshot(path, replication);
  if (!described.ok()) {
    std::fprintf(stderr, "%s: %s\n", path,
                 described.status().ToString().c_str());
    return 1;
  }
  const engine::SnapshotDescription& d = *described;

  std::printf("snapshot %s\n", path);
  std::printf("  format version %" PRIu32 " | %" PRIu64 " bytes\n",
              d.format_version, d.file_size);
  std::printf("  config hash %016" PRIx64 " | store hash %016" PRIx64 "\n",
              d.config_hash, d.store_hash);
  std::printf("  peers %" PRIu64 " | indexed docs %" PRIu64
              " | overlay %s (seed %" PRIu64 ")\n",
              d.num_peers, d.indexed_docs,
              d.overlay_kind == 0 ? "p-grid" : "chord", d.overlay_seed);
  std::printf("  params: DFmax %" PRIu64 " | Ff %" PRIu64 " | window %" PRIu32
              " | smax %" PRIu32 "\n\n",
              d.params.df_max, d.params.very_frequent_threshold,
              d.params.window, d.params.s_max);

  std::printf("%4s %-14s %10s %12s %18s\n", "id", "section", "offset",
              "bytes", "checksum");
  for (const auto& s : d.sections) {
    std::printf("%4" PRIu32 " %-14s %10" PRIu64 " %12" PRIu64 " %18" PRIx64
                "\n",
                s.id, s.name.c_str(), s.offset, s.length, s.checksum);
  }

  std::printf("\nglobal index: %zu shard(s)\n", d.shards.size());
  std::printf("%6s %12s %16s %14s %18s\n", "shard", "ledger_keys",
              "ledger_postings", "fragment_keys", "fragment_postings");
  uint64_t keys = 0, postings = 0;
  for (size_t i = 0; i < d.shards.size(); ++i) {
    const auto& s = d.shards[i];
    std::printf("%6zu %12" PRIu64 " %16" PRIu64 " %14" PRIu64 " %18" PRIu64
                "\n",
                i, s.ledger_keys, s.ledger_postings, s.fragment_keys,
                s.fragment_postings);
    keys += s.ledger_keys;
    postings += s.ledger_postings;
  }
  std::printf("\ntotal: %" PRIu64 " keys | %" PRIu64 " ledger postings\n",
              keys, postings);

  if (!d.replica_keys_per_peer.empty()) {
    std::printf("\nreplica holders (replication %" PRIu32 "):\n",
                d.replication);
    std::printf("%6s %14s\n", "peer", "replica_keys");
    uint64_t total_slots = 0, max_slots = 0;
    for (size_t p = 0; p < d.replica_keys_per_peer.size(); ++p) {
      std::printf("%6zu %14" PRIu64 "\n", p, d.replica_keys_per_peer[p]);
      total_slots += d.replica_keys_per_peer[p];
      if (d.replica_keys_per_peer[p] > max_slots) {
        max_slots = d.replica_keys_per_peer[p];
      }
    }
    const double mean =
        static_cast<double>(total_slots) /
        static_cast<double>(d.replica_keys_per_peer.size());
    std::printf("total %" PRIu64 " replica slots | mean %.1f | max %" PRIu64
                " per peer\n",
                total_slots, mean, max_slots);
  }
  return 0;
}
