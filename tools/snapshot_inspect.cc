// snapshot_inspect: dump the header, section table and global-index
// shape of an engine snapshot file, without needing the config or corpus
// it was built from.
//
//   snapshot_inspect <file.hdks>
//
// Everything printed comes from the file alone; the same checksum
// validation a load performs runs first, so this doubles as an integrity
// check (`snapshot_inspect file && echo ok`).
#include <cinttypes>
#include <cstdio>

#include "common/logging.h"
#include "engine/engine_snapshot.h"

int main(int argc, char** argv) {
  using namespace hdk;
  SetLogLevel(LogLevel::kWarning);

  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <snapshot.hdks>\n", argv[0]);
    return 2;
  }

  auto described = engine::DescribeEngineSnapshot(argv[1]);
  if (!described.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv[1],
                 described.status().ToString().c_str());
    return 1;
  }
  const engine::SnapshotDescription& d = *described;

  std::printf("snapshot %s\n", argv[1]);
  std::printf("  format version %" PRIu32 " | %" PRIu64 " bytes\n",
              d.format_version, d.file_size);
  std::printf("  config hash %016" PRIx64 " | store hash %016" PRIx64 "\n",
              d.config_hash, d.store_hash);
  std::printf("  peers %" PRIu64 " | indexed docs %" PRIu64
              " | overlay %s (seed %" PRIu64 ")\n",
              d.num_peers, d.indexed_docs,
              d.overlay_kind == 0 ? "p-grid" : "chord", d.overlay_seed);
  std::printf("  params: DFmax %" PRIu64 " | Ff %" PRIu64 " | window %" PRIu32
              " | smax %" PRIu32 "\n\n",
              d.params.df_max, d.params.very_frequent_threshold,
              d.params.window, d.params.s_max);

  std::printf("%4s %-14s %10s %12s %18s\n", "id", "section", "offset",
              "bytes", "checksum");
  for (const auto& s : d.sections) {
    std::printf("%4" PRIu32 " %-14s %10" PRIu64 " %12" PRIu64 " %18" PRIx64
                "\n",
                s.id, s.name.c_str(), s.offset, s.length, s.checksum);
  }

  std::printf("\nglobal index: %zu shard(s)\n", d.shards.size());
  std::printf("%6s %12s %16s %14s %18s\n", "shard", "ledger_keys",
              "ledger_postings", "fragment_keys", "fragment_postings");
  uint64_t keys = 0, postings = 0;
  for (size_t i = 0; i < d.shards.size(); ++i) {
    const auto& s = d.shards[i];
    std::printf("%6zu %12" PRIu64 " %16" PRIu64 " %14" PRIu64 " %18" PRIu64
                "\n",
                i, s.ledger_keys, s.ledger_postings, s.fragment_keys,
                s.fragment_postings);
    keys += s.ledger_keys;
    postings += s.ledger_postings;
  }
  std::printf("\ntotal: %" PRIu64 " keys | %" PRIu64 " ledger postings\n",
              keys, postings);
  return 0;
}
